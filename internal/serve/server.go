package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"stronghold/internal/metrics"
	"stronghold/internal/modelcfg"
)

// Options tunes the server. The zero value takes every default.
type Options struct {
	// CacheSize bounds the result cache in entries (default 256;
	// negative disables caching).
	CacheSize int
	// MaxConcurrent bounds the simulations running at once — the
	// admission-control worker pool (default 4). Requests that miss
	// the cache when the pool is saturated are rejected with 429 and
	// a Retry-After hint rather than queued: a capacity-planning
	// query is interactive, and an honest "try again in a second"
	// beats an unbounded queue.
	MaxConcurrent int
	// RetryAfterSeconds is the Retry-After hint on 429s (default 1).
	RetryAfterSeconds int
	// Stats receives the server-side counters (default: a fresh set).
	Stats *metrics.ServeStats
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 4
	}
	if o.RetryAfterSeconds == 0 {
		o.RetryAfterSeconds = 1
	}
	if o.Stats == nil {
		o.Stats = metrics.NewServeStats()
	}
	return o
}

// Server is the HTTP layer: routing, canonicalization, caching,
// single-flight, admission control and metrics. It owns no
// goroutines — net/http's listener (in cmd/stronghold-serve or
// httptest) drives the handlers — and never reads the wall clock, so
// response bodies are pure functions of the request and the backend.
type Server struct {
	backend Backend
	opts    Options
	stats   *metrics.ServeStats
	cache   *resultCache
	flights *flightGroup
	pool    chan struct{} // admission semaphore: one token per running simulation
	mux     *http.ServeMux

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	methods  []byte // /v1/methods body, rendered once
}

// New builds a Server over the backend.
func New(b Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		backend: b,
		opts:    opts,
		stats:   opts.Stats,
		cache:   newResultCache(opts.CacheSize),
		flights: newFlightGroup(),
		pool:    make(chan struct{}, opts.MaxConcurrent),
		mux:     http.NewServeMux(),
	}
	s.methods = s.renderMethods()
	s.mux.HandleFunc("/v1/solve", s.wrap(s.handleSolve))
	s.mux.HandleFunc("/v1/capacity", s.wrap(s.handleCapacity))
	s.mux.HandleFunc("/v1/whatif", s.wrap(s.handleWhatIf))
	s.mux.HandleFunc("/v1/methods", s.wrap(s.handleMethods))
	s.mux.HandleFunc("/metrics", s.wrap(s.handleMetrics))
	return s
}

// Stats exposes the server-side counter set (for tests and embedders).
func (s *Server) Stats() *metrics.ServeStats { return s.stats }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops admitting requests and blocks until every in-flight
// handler has drained. It composes with http.Server.Shutdown in the
// cmd layer: the listener drains connections, Shutdown drains work.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// wrap is the common handler prelude: refuse new work when closing,
// track in-flight handlers for the drain, and count the request and
// its response status.
func (s *Server) wrap(h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write(errorBody("server is shutting down"))
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()

		s.stats.Request(r.URL.Path)
		s.stats.InflightAdd(1)
		status := h(w, r)
		s.stats.InflightAdd(-1)
		s.stats.Response(strconv.Itoa(status))
	}
}

// errorBody renders the uniform error payload.
func errorBody(msg string) []byte {
	body, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		panic("serve: error marshal: " + err.Error())
	}
	return append(body, '\n')
}

// writeJSON writes a prepared JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body []byte) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	return status
}

// marshalResponse renders a response body in its canonical encoding:
// two-space-indented JSON with a trailing newline. The bytes are what
// the cache stores, so the encoding is part of the byte-identity
// contract.
func marshalResponse(v any) []byte {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic("serve: response marshal: " + err.Error())
	}
	return append(body, '\n')
}

// maxRequestBytes bounds request bodies; capacity-planning queries
// are small, and the decoder should not be a memory amplifier.
const maxRequestBytes = 1 << 20

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer func() { _ = r.Body.Close() }()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
}

// simulate is the shared query path for the three simulation
// endpoints: cache lookup by canonical hash, single-flight dedup of
// concurrent identical misses, admission control on the leader, and
// cache fill on success.
func (s *Server) simulate(w http.ResponseWriter, hash string, run func() (int, []byte)) int {
	if body, ok := s.cache.Get(hash); ok {
		s.stats.CacheHit()
		w.Header().Set("X-Cache", "hit")
		return writeJSON(w, http.StatusOK, body)
	}
	status, body, shared := s.flights.Do(hash, func() (int, []byte) {
		select {
		case s.pool <- struct{}{}:
		default:
			s.stats.Rejected()
			return http.StatusTooManyRequests, errorBody(fmt.Sprintf(
				"all %d simulation workers are busy; retry shortly", s.opts.MaxConcurrent))
		}
		defer func() { <-s.pool }()
		s.stats.CacheMiss()
		s.stats.SimulationRun()
		st, b := run()
		if st == http.StatusOK {
			s.cache.Put(hash, b)
			s.stats.SetCacheEntries(s.cache.Len())
		}
		return st, b
	})
	if shared {
		s.stats.SingleFlightShared()
		w.Header().Set("X-Cache", "shared")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
	}
	return writeJSON(w, status, body)
}

// post guards the simulation endpoints' method and body handling.
func (s *Server) post(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody("use POST with a JSON body"))
		return nil, false
	}
	body, err := readBody(w, r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return nil, false
	}
	return body, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) int {
	body, ok := s.post(w, r)
	if !ok {
		return methodOrBodyStatus(r)
	}
	req, hash, err := CanonicalSolve(body)
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
	}
	return s.simulate(w, hash, func() (int, []byte) {
		resp, err := s.backend.Solve(req)
		if err != nil {
			return http.StatusUnprocessableEntity, errorBody(err.Error())
		}
		resp.Hash = hash
		return http.StatusOK, marshalResponse(resp)
	})
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) int {
	body, ok := s.post(w, r)
	if !ok {
		return methodOrBodyStatus(r)
	}
	req, hash, err := CanonicalCapacity(body)
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
	}
	return s.simulate(w, hash, func() (int, []byte) {
		resp, err := s.backend.Capacity(req)
		if err != nil {
			return http.StatusUnprocessableEntity, errorBody(err.Error())
		}
		resp.Hash = hash
		return http.StatusOK, marshalResponse(resp)
	})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) int {
	body, ok := s.post(w, r)
	if !ok {
		return methodOrBodyStatus(r)
	}
	req, hash, err := CanonicalWhatIf(body)
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
	}
	return s.simulate(w, hash, func() (int, []byte) {
		resp, err := s.backend.WhatIf(req)
		if err != nil {
			return http.StatusUnprocessableEntity, errorBody(err.Error())
		}
		resp.Hash = hash
		return http.StatusOK, marshalResponse(resp)
	})
}

// methodOrBodyStatus recovers the status post() already wrote, for
// the wrapper's response counter.
func methodOrBodyStatus(r *http.Request) int {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed
	}
	return http.StatusBadRequest
}

// renderMethods renders the /v1/methods body once: the registry is
// immutable for the process lifetime.
func (s *Server) renderMethods() []byte {
	var resp MethodsResponse
	for _, sum := range modelcfg.MethodSummaries() {
		row := MethodRow{
			Key:         sum.Key,
			Display:     sum.Display,
			Aliases:     sum.Aliases,
			Engine:      sum.Engine,
			PlanDriven:  sum.PlanDriven,
			SingleGPU:   sum.SingleGPU,
			Distributed: sum.Distributed,
			NVMe:        sum.NVMe,
		}
		row.Decisions.Window = sum.Decisions.Window
		row.Decisions.OptPlacement = sum.Decisions.OptPlacement
		resp.Methods = append(resp.Methods, row)
	}
	return marshalResponse(resp)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		return writeJSON(w, http.StatusMethodNotAllowed, errorBody("use GET"))
	}
	return writeJSON(w, http.StatusOK, s.methods)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		return writeJSON(w, http.StatusMethodNotAllowed, errorBody("use GET"))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	if err := s.stats.Snapshot().WriteText(w); err != nil {
		return http.StatusInternalServerError
	}
	return http.StatusOK
}
