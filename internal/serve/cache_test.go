package serve

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: now b is oldest
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s should still be cached", key)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A2")) // refresh, not insert
	c.Put("c", []byte("C"))  // evicts b, not a
	if body, ok := c.Get("a"); !ok || string(body) != "A2" {
		t.Errorf("a = %q, %v; want A2", body, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache served a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestCacheBoundHolds(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
		if c.Len() > 8 {
			t.Fatalf("cache grew past bound: %d", c.Len())
		}
	}
	if c.Len() != 8 {
		t.Errorf("Len = %d, want 8", c.Len())
	}
}
