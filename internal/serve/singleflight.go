package serve

import "sync"

// flightGroup deduplicates concurrent identical work: under N
// simultaneous requests with the same canonical hash, exactly one
// (the leader) runs the computation; the others (followers) block on
// its completion and share the result. Together with the result cache
// this gives the single-simulation-per-unique-hash guarantee the
// concurrency suite asserts.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn under key, or joins an in-flight run of the same key.
// It returns fn's (status, body) and whether this caller was a
// follower (shared someone else's result). fn runs exactly once per
// concurrent group; once the group drains, a later Do runs fn again
// (by then the result cache answers instead).
func (g *flightGroup) Do(key string, fn func() (int, []byte)) (status int, body []byte, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.status, c.body, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.status, c.body = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.status, c.body, false
}
