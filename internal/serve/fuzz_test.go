package serve

import (
	"bytes"
	"testing"
)

// FuzzRequestCanonical fuzzes the request decoders of all three
// simulation endpoints and asserts decode→canonicalize→hash is a
// fixed point: re-encoding a canonical request and pushing it back
// through the pipeline must reproduce the same hash. Together with
// the seed corpus (reordered fields, aliases, odd whitespace,
// explicit defaults) this pins the cache-key soundness argument: any
// two spellings of the same query share one cache entry, and
// canonicalization can never oscillate.
func FuzzRequestCanonical(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"model":{"size_billions":10}}`),
		[]byte(`{"platform":"V100","method":"STRONGHOLD","model":{"batch_size":4,"size_billions":10}}`),
		[]byte("{\n\t\"model\": {\"layers\": 54, \"hidden\": 2560},\n\t\"coopt\": true\n}"),
		[]byte(`{"methods":["megatron","stronghold","megatron-lm"]}`),
		[]byte(`{"platform":"a10"}`),
		[]byte(`{"model":{"size_billions":5},"faults":"h2d:slow(at=0s,dur=30s,every=1m,factor=0.6)"}`),
		[]byte(`{"faults":"seed=7;h2d:black(at=1s,dur=2s,every=10s)","model":{"layers":10},"window":2}`),
		[]byte(`{}`),
		[]byte(`{"model":{"size_billions":1e308}}`),
		[]byte(`{"model":{"layers":-1}}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOne(t, data, "/v1/solve", func(b []byte) (any, string, error) {
			req, hash, err := CanonicalSolve(b)
			return req, hash, err
		})
		fuzzOne(t, data, "/v1/capacity", func(b []byte) (any, string, error) {
			req, hash, err := CanonicalCapacity(b)
			return req, hash, err
		})
		fuzzOne(t, data, "/v1/whatif", func(b []byte) (any, string, error) {
			req, hash, err := CanonicalWhatIf(b)
			return req, hash, err
		})
	})
}

// fuzzOne checks one endpoint's canonicalization pipeline on one
// input: if the input is accepted, its canonical form must (a)
// re-encode deterministically, (b) be accepted again, and (c) hash to
// the same key — the fixed point.
func fuzzOne(t *testing.T, data []byte, endpoint string, canonicalize func([]byte) (any, string, error)) {
	t.Helper()
	req, hash, err := canonicalize(data)
	if err != nil {
		return // rejected input: nothing to pin
	}
	if len(hash) != 64 {
		t.Fatalf("%s: hash %q is not hex SHA-256", endpoint, hash)
	}
	reencoded := canonicalBody(endpoint, req)[len(endpoint)+1:]
	req2, hash2, err := canonicalize(reencoded)
	if err != nil {
		t.Fatalf("%s: canonical form rejected on re-decode: %v\ninput: %s\ncanonical: %s",
			endpoint, err, data, reencoded)
	}
	if hash2 != hash {
		t.Fatalf("%s: hash not a fixed point: %s -> %s\ninput: %s\ncanonical: %s",
			endpoint, hash, hash2, data, reencoded)
	}
	if !bytes.Equal(canonicalBody(endpoint, req2), canonicalBody(endpoint, req)) {
		t.Fatalf("%s: canonical encoding not a fixed point\ninput: %s", endpoint, data)
	}
}
