package serve

// Backend computes answers for canonicalized requests. The production
// implementation (internal/serve/backend) runs the deterministic
// simulator through the root stronghold package; tests substitute
// fakes to pin the HTTP layer's behavior without simulation cost.
//
// Backend calls MUST be pure functions of the canonical request —
// same request, same response, byte for byte — because the server
// caches marshaled bodies by canonical request hash and replays them
// verbatim.
type Backend interface {
	Solve(SolveRequest) (SolveResponse, error)
	Capacity(CapacityRequest) (CapacityResponse, error)
	WhatIf(WhatIfRequest) (WhatIfResponse, error)
}

// WindowReport is the §III-D working-window decision on the wire.
type WindowReport struct {
	M             int  `json:"m"`
	MForward      int  `json:"m_forward"`
	MBackward     int  `json:"m_backward"`
	MOptimizer    int  `json:"m_optimizer"`
	MemoryBound   bool `json:"memory_bound"`
	AsyncFeasible bool `json:"async_feasible"`
	Streams       int  `json:"streams"`
}

// SolveResponse is /v1/solve's body: the co-opted window + optimizer
// placement decision for the requested configuration.
type SolveResponse struct {
	Hash          string       `json:"hash"`
	Request       SolveRequest `json:"request"`
	ModelBillions float64      `json:"model_billions"`
	Window        WindowReport `json:"window"`
	// OptGPUFrac is the co-optimized GPU share of each offloaded
	// layer's optimizer update (zero with coopt off or when the fixed
	// placement wins).
	OptGPUFrac float64 `json:"opt_gpu_frac"`
}

// CapacityRow is one method's ceiling on the requested platform.
type CapacityRow struct {
	Method      string  `json:"method"`
	Display     string  `json:"display"`
	MaxBillions float64 `json:"max_billions"`
}

// CapacityResponse is /v1/capacity's body: the largest trainable
// model per method — Figure 6 as an API call.
type CapacityResponse struct {
	Hash     string          `json:"hash"`
	Request  CapacityRequest `json:"request"`
	Platform string          `json:"platform"`
	Rows     []CapacityRow   `json:"rows"`
}

// RunReport is one simulated steady-state iteration on the wire.
type RunReport struct {
	IterSeconds   float64 `json:"iter_seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	TFLOPS        float64 `json:"tflops"`
	Overlap       float64 `json:"overlap"`
	// Degraded-mode counters (zero on the clean run and for baselines,
	// which have no reissue path).
	Retries        uint64 `json:"retries,omitempty"`
	DeadlineMisses uint64 `json:"deadline_misses,omitempty"`
	WindowResolves uint64 `json:"window_resolves,omitempty"`
	FinalWindow    int    `json:"final_window,omitempty"`
}

// WhatIfResponse is /v1/whatif's body: the same schedule clean and
// under the fault plan, plus the headline retention number.
type WhatIfResponse struct {
	Hash          string        `json:"hash"`
	Request       WhatIfRequest `json:"request"`
	ModelBillions float64       `json:"model_billions"`
	Clean         RunReport     `json:"clean"`
	Degraded      RunReport     `json:"degraded"`
	// RetentionPc is degraded throughput as a percentage of clean.
	RetentionPc float64 `json:"retention_pc"`
}

// MethodsResponse is /v1/methods's body: the offload-method registry.
type MethodsResponse struct {
	Methods []MethodRow `json:"methods"`
}

// MethodRow mirrors modelcfg.MethodSummary; it is re-declared here so
// the wire schema is owned by the serve package and a registry
// refactor cannot silently change the API.
type MethodRow struct {
	Key         string   `json:"key"`
	Display     string   `json:"display"`
	Aliases     []string `json:"aliases,omitempty"`
	Engine      string   `json:"engine"`
	PlanDriven  bool     `json:"plan_driven"`
	SingleGPU   bool     `json:"single_gpu"`
	Distributed bool     `json:"distributed"`
	NVMe        bool     `json:"nvme"`
	Decisions   struct {
		Window       bool `json:"window"`
		OptPlacement bool `json:"opt_placement"`
	} `json:"decisions"`
}
