// Golden-fixture tests live in an external test package so they can
// drive the real simulation backend (internal/serve itself must not
// import simulation code — see the package comment).
package serve_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stronghold/internal/serve"
	"stronghold/internal/serve/backend"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRequests is the deterministic request sequence every golden
// run replays. The repeated solve pins a cache hit into the /metrics
// fixture, so counter drift is as visible as schema drift.
var goldenRequests = []struct {
	file, method, path, body string
}{
	{"solve.json", "POST", "/v1/solve",
		`{"model":{"size_billions":4},"coopt":true}`},
	{"solve_repeat.json", "POST", "/v1/solve",
		`{"coopt":true,"model":{"batch_size":4,"size_billions":4},"platform":"V100"}`},
	{"capacity.json", "POST", "/v1/capacity",
		`{"platform":"v100"}`},
	{"whatif.json", "POST", "/v1/whatif",
		`{"model":{"size_billions":2},"faults":"h2d:slow(at=0s,dur=30s,every=60s,factor=0.6)"}`},
	{"methods.json", "GET", "/v1/methods", ""},
	{"metrics.prom", "GET", "/metrics", ""},
}

// replay runs the golden sequence against a fresh real-backend server
// and returns each response body in order.
func replay(t *testing.T, opts serve.Options) [][]byte {
	t.Helper()
	ts := httptest.NewServer(serve.New(backend.Sim{}, opts))
	defer ts.Close()
	var bodies [][]byte
	for _, req := range goldenRequests {
		var resp *http.Response
		var err error
		if req.method == "GET" {
			resp, err = http.Get(ts.URL + req.path)
		} else {
			resp, err = http.Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s %s: status %d: %s", req.method, req.path, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// TestGoldenEndpoints pins every endpoint's response bytes to
// checked-in fixtures. Run with -update after an intentional schema
// change; CI's golden-drift job regenerates and fails on any
// uncommitted diff.
func TestGoldenEndpoints(t *testing.T) {
	bodies := replay(t, serve.Options{})
	for i, req := range goldenRequests {
		t.Run(req.file, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", req.file)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, bodies[i], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(bodies[i], want) {
				t.Errorf("%s drifted from fixture:\n--- got ---\n%s\n--- want ---\n%s",
					req.file, bodies[i], want)
			}
		})
	}
	// The repeated solve must be byte-identical to the first — that is
	// the cache contract the fixture pair witnesses.
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("repeat solve differs from first response")
	}
}

// TestGoldenStableAcrossPoolSizes replays the sequence at different
// worker-pool sizes and asserts byte-identical bodies: concurrency
// configuration must never leak into responses.
func TestGoldenStableAcrossPoolSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the golden sequence twice")
	}
	one := replay(t, serve.Options{MaxConcurrent: 1, CacheSize: 1})
	many := replay(t, serve.Options{MaxConcurrent: 16})
	for i, req := range goldenRequests {
		if req.file == "metrics.prom" {
			// Cache-size differences legitimately change the counters.
			continue
		}
		if !bytes.Equal(one[i], many[i]) {
			t.Errorf("%s differs between pool sizes:\n%s\nvs\n%s", req.file, one[i], many[i])
		}
	}
}
