package trace

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"stronghold/internal/sim"
)

func span(k Kind, start, end sim.Time) Span {
	return Span{Track: string(k), Name: "x", Kind: k, Layer: -1, Start: start, End: end}
}

func TestAddAndQuery(t *testing.T) {
	tr := New()
	tr.Add(span(KindCompute, 0, 10))
	tr.Add(span(KindH2D, 5, 15))
	if tr.Len() != 2 || len(tr.Spans()) != 2 {
		t.Fatal("span accounting wrong")
	}
	if got := tr.ByKind(KindCompute); len(got) != 1 || got[0].Duration() != 10 {
		t.Fatal("ByKind wrong")
	}
	if tr.Makespan() != 15 {
		t.Fatalf("makespan %d", tr.Makespan())
	}
}

func TestAddInvertedSpanPanics(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Add(span(KindCompute, 10, 5))
}

func TestBusyUnion(t *testing.T) {
	tr := New()
	tr.Add(span(KindCompute, 0, 10))
	tr.Add(span(KindCompute, 5, 12))  // overlaps previous
	tr.Add(span(KindCompute, 20, 25)) // disjoint
	if got := tr.Busy(KindCompute); got != 17 {
		t.Fatalf("busy = %d, want 17", got)
	}
	if tr.Busy(KindNVMe) != 0 {
		t.Fatal("no NVMe spans recorded")
	}
}

func TestOverlapFractionFullyHidden(t *testing.T) {
	// Communication entirely inside computation → fraction 1.
	tr := New()
	tr.Add(span(KindCompute, 0, 100))
	tr.Add(span(KindH2D, 10, 40))
	tr.Add(span(KindD2H, 50, 70))
	got := tr.OverlapFraction([]Kind{KindCompute}, []Kind{KindH2D, KindD2H})
	if got != 1 {
		t.Fatalf("overlap = %v, want 1", got)
	}
}

func TestOverlapFractionExposed(t *testing.T) {
	// Communication half inside, half outside computation.
	tr := New()
	tr.Add(span(KindCompute, 0, 50))
	tr.Add(span(KindH2D, 25, 75)) // 25 hidden, 25 exposed
	got := tr.OverlapFraction([]Kind{KindCompute}, []Kind{KindH2D})
	if got != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", got)
	}
}

func TestOverlapFractionNoComm(t *testing.T) {
	tr := New()
	tr.Add(span(KindCompute, 0, 50))
	if got := tr.OverlapFraction([]Kind{KindCompute}, []Kind{KindH2D}); got != 1 {
		t.Fatalf("no communication should report full overlap, got %v", got)
	}
}

func TestChromeJSON(t *testing.T) {
	tr := New()
	tr.Add(Span{Track: "gpu", Name: "fp layer 0", Kind: KindCompute, Start: 0, End: 2_000_000})
	tr.Add(Span{Track: "pcie", Name: "prefetch 1", Kind: KindH2D, Start: 500_000, End: 1_500_000})
	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["dur"].(float64) != 2000 {
		t.Fatalf("bad event %v", events[0])
	}
	// Different tracks get different tids.
	if events[0]["tid"] == events[1]["tid"] {
		t.Fatal("tracks must map to distinct tids")
	}
}

// Property: Busy of a set of spans never exceeds makespan and never
// falls below the longest single span.
func TestPropertyBusyBounds(t *testing.T) {
	f := func(starts []uint16) bool {
		tr := New()
		var longest sim.Time
		for i, s := range starts {
			if i >= 12 {
				break
			}
			st := sim.Time(s)
			d := sim.Time(s%97) + 1
			tr.Add(span(KindCompute, st, st+d))
			if d > longest {
				longest = d
			}
		}
		if tr.Len() == 0 {
			return true
		}
		busy := tr.Busy(KindCompute)
		return busy >= longest && busy <= tr.Makespan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: overlap fraction is always in [0, 1].
func TestPropertyOverlapInRange(t *testing.T) {
	f := func(a, b []uint16) bool {
		tr := New()
		for i, s := range a {
			if i >= 8 {
				break
			}
			tr.Add(span(KindCompute, sim.Time(s), sim.Time(s)+sim.Time(s%31)+1))
		}
		for i, s := range b {
			if i >= 8 {
				break
			}
			tr.Add(span(KindH2D, sim.Time(s), sim.Time(s)+sim.Time(s%17)+1))
		}
		got := tr.OverlapFraction([]Kind{KindCompute}, []Kind{KindH2D})
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
