package trace

import (
	"strings"
	"testing"
)

func TestSummaryStats(t *testing.T) {
	tr := New()
	tr.Add(Span{Track: "gpu", Name: "a", Kind: KindCompute, Start: 0, End: 80})
	tr.Add(Span{Track: "gpu", Name: "b", Kind: KindCompute, Start: 90, End: 100})
	tr.Add(Span{Track: "pcie", Name: "c", Kind: KindH2D, Start: 0, End: 30})
	stats := tr.Summary()
	if len(stats) != 2 {
		t.Fatalf("want 2 tracks, got %d", len(stats))
	}
	// Sorted by busy descending: gpu (90) before pcie (30).
	if stats[0].Track != "gpu" || stats[0].Busy != 90 || stats[0].Spans != 2 {
		t.Fatalf("gpu stat %+v", stats[0])
	}
	if stats[0].Utilization != 0.9 {
		t.Fatalf("gpu utilization %v", stats[0].Utilization)
	}
	if stats[1].Track != "pcie" || stats[1].Utilization != 0.3 {
		t.Fatalf("pcie stat %+v", stats[1])
	}
}

func TestSummaryEmpty(t *testing.T) {
	if got := New().Summary(); len(got) != 0 {
		t.Fatal("empty trace must summarize empty")
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New()
	tr.Add(Span{Track: "gpu", Name: "a", Kind: KindCompute, Start: 0, End: 50})
	tr.Add(Span{Track: "pcie", Name: "b", Kind: KindH2D, Start: 50, End: 100})
	g := tr.Gantt(10)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d: %q", len(lines), g)
	}
	// GPU busy in the first half, PCIe in the second.
	if !strings.Contains(lines[0], "#") || !strings.Contains(lines[1], "#") {
		t.Fatalf("missing busy cells:\n%s", g)
	}
	gpuRow := lines[0][strings.Index(lines[0], "|")+1:]
	if gpuRow[0] != '#' || gpuRow[8] != '.' {
		t.Fatalf("gpu occupancy wrong: %q", gpuRow)
	}
}

func TestGanttEmptyAndTinyWidth(t *testing.T) {
	if got := New().Gantt(40); got != "(empty trace)\n" {
		t.Fatalf("empty gantt %q", got)
	}
	tr := New()
	tr.Add(Span{Track: "x", Name: "a", Kind: KindCompute, Start: 0, End: 10})
	if got := tr.Gantt(1); !strings.Contains(got, "#") {
		t.Fatalf("tiny width must clamp: %q", got)
	}
}
