// Package trace records execution timelines from the simulated
// hardware — the data behind Figure 4's computation/communication
// overlap plot — and computes overlap statistics. Traces export to
// Chrome trace-event JSON for visual inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"stronghold/internal/sim"
)

// Kind classifies a span.
type Kind string

// Span kinds recorded by the engines.
const (
	KindCompute  Kind = "compute"   // GPU kernel execution
	KindH2D      Kind = "h2d"       // host→device transfer
	KindD2H      Kind = "d2h"       // device→host transfer
	KindOptimize Kind = "optimizer" // parameter update
	KindNVMe     Kind = "nvme"      // secondary-storage I/O
	KindNet      Kind = "network"   // cross-node communication
	KindFault    Kind = "fault"     // injected fault / recovery event
)

// Span is one timed event on a named track.
type Span struct {
	Track string // e.g. "gpu", "pcie-h2d", "cpu-opt"
	Name  string // e.g. "fp layer 12"
	Kind  Kind
	Layer int // layer index, -1 when not applicable
	Start sim.Time
	End   sim.Time
}

// Duration returns the span's length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Trace accumulates spans.
type Trace struct {
	spans []Span
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Add records a span. End must not precede Start.
func (t *Trace) Add(s Span) {
	if s.End < s.Start {
		panic(fmt.Sprintf("trace: span %q ends (%d) before it starts (%d)", s.Name, s.End, s.Start))
	}
	t.spans = append(t.spans, s)
}

// Spans returns all recorded spans in insertion order.
func (t *Trace) Spans() []Span { return t.spans }

// Len returns the number of spans.
func (t *Trace) Len() int { return len(t.spans) }

// ByKind returns the spans of one kind.
func (t *Trace) ByKind(k Kind) []Span {
	var out []Span
	for _, s := range t.spans {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// Busy returns the union-length of all spans of the given kinds —
// wall-clock time during which at least one such span was active.
func (t *Trace) Busy(kinds ...Kind) sim.Time {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var iv [][2]sim.Time
	for _, s := range t.spans {
		if want[s.Kind] {
			iv = append(iv, [2]sim.Time{s.Start, s.End})
		}
	}
	return unionLength(iv)
}

// OverlapFraction returns the fraction of communication time (kinds b)
// hidden under computation time (kinds a): |A ∩ B| / |B|. This is the
// quantity Figure 4 demonstrates and the P1/P2 models maximize.
func (t *Trace) OverlapFraction(a []Kind, b []Kind) float64 {
	busyB := t.Busy(b...)
	if busyB == 0 {
		return 1
	}
	wantA := map[Kind]bool{}
	for _, k := range a {
		wantA[k] = true
	}
	wantB := map[Kind]bool{}
	for _, k := range b {
		wantB[k] = true
	}
	var ivA, ivB [][2]sim.Time
	for _, s := range t.spans {
		if wantA[s.Kind] {
			ivA = append(ivA, [2]sim.Time{s.Start, s.End})
		}
		if wantB[s.Kind] {
			ivB = append(ivB, [2]sim.Time{s.Start, s.End})
		}
	}
	inter := intersectionLength(ivA, ivB)
	return float64(inter) / float64(busyB)
}

// Makespan returns the end of the last span.
func (t *Trace) Makespan() sim.Time {
	var end sim.Time
	for _, s := range t.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// unionLength computes the total covered length of intervals.
func unionLength(iv [][2]sim.Time) sim.Time {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var total sim.Time
	curStart, curEnd := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curEnd {
			total += curEnd - curStart
			curStart, curEnd = x[0], x[1]
		} else if x[1] > curEnd {
			curEnd = x[1]
		}
	}
	return total + (curEnd - curStart)
}

// intersectionLength computes |union(a) ∩ union(b)|.
func intersectionLength(a, b [][2]sim.Time) sim.Time {
	a = normalize(a)
	b = normalize(b)
	var total sim.Time
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max(a[i][0], b[j][0])
		hi := min(a[i][1], b[j][1])
		if hi > lo {
			total += hi - lo
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	return total
}

// normalize sorts and merges intervals.
func normalize(iv [][2]sim.Time) [][2]sim.Time {
	if len(iv) == 0 {
		return nil
	}
	sorted := append([][2]sim.Time(nil), iv...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	out := [][2]sim.Time{sorted[0]}
	for _, x := range sorted[1:] {
		last := &out[len(out)-1]
		if x[0] <= last[1] {
			if x[1] > last[1] {
				last[1] = x[1]
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

// chromeEvent is one Chrome trace-event entry.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`  // microseconds
	Dur   int64  `json:"dur"` // microseconds
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
}

// ChromeJSON serializes the trace in Chrome trace-event format
// (loadable in chrome://tracing or Perfetto).
func (t *Trace) ChromeJSON() ([]byte, error) {
	tracks := map[string]int{}
	events := make([]chromeEvent, 0, len(t.spans))
	for _, s := range t.spans {
		tid, ok := tracks[s.Track]
		if !ok {
			tid = len(tracks)
			tracks[s.Track] = tid
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: string(s.Kind), Phase: "X",
			TS: s.Start / 1000, Dur: max(s.Duration()/1000, 1),
			PID: 0, TID: tid,
		})
	}
	return json.MarshalIndent(events, "", " ")
}
