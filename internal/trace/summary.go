package trace

import (
	"fmt"
	"sort"
	"strings"

	"stronghold/internal/sim"
)

// TrackStat summarizes one track of a trace.
type TrackStat struct {
	Track string
	Spans int
	Busy  sim.Time
	// Utilization is busy time over the trace's makespan.
	Utilization float64
}

// Summary computes per-track statistics, sorted by descending busy
// time — the numbers behind a Figure 4-style plot.
func (t *Trace) Summary() []TrackStat {
	makespan := t.Makespan()
	byTrack := map[string][][2]sim.Time{}
	counts := map[string]int{}
	for _, s := range t.spans {
		byTrack[s.Track] = append(byTrack[s.Track], [2]sim.Time{s.Start, s.End})
		counts[s.Track]++
	}
	var out []TrackStat
	for track, iv := range byTrack {
		busy := unionLength(iv)
		st := TrackStat{Track: track, Spans: counts[track], Busy: busy}
		if makespan > 0 {
			st.Utilization = float64(busy) / float64(makespan)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// Gantt renders an ASCII occupancy chart: one row per track, the given
// width in character cells across the makespan. Each cell is '#' when
// the track is busy for more than half the cell, '.' otherwise. Useful
// for eyeballing overlap in terminals and test logs.
func (t *Trace) Gantt(width int) string {
	if width < 8 {
		width = 8
	}
	makespan := t.Makespan()
	if makespan == 0 || t.Len() == 0 {
		return "(empty trace)\n"
	}
	byTrack := map[string][][2]sim.Time{}
	var order []string
	for _, s := range t.spans {
		if _, ok := byTrack[s.Track]; !ok {
			order = append(order, s.Track)
		}
		byTrack[s.Track] = append(byTrack[s.Track], [2]sim.Time{s.Start, s.End})
	}
	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	cell := float64(makespan) / float64(width)
	var sb strings.Builder
	for _, track := range order {
		iv := normalize(byTrack[track])
		fmt.Fprintf(&sb, "%-*s |", nameW, track)
		for c := 0; c < width; c++ {
			lo := sim.Time(float64(c) * cell)
			hi := sim.Time(float64(c+1) * cell)
			cover := intersectionLength(iv, [][2]sim.Time{{lo, hi}})
			if float64(cover) > 0.5*cell {
				sb.WriteByte('#')
			} else if cover > 0 {
				sb.WriteByte('+')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
