// Package bench is the simulator's canonical benchmark suite and the
// BENCH_<rev>.json document model. It owns everything that touches the
// simulation engines — building models, running scenarios, distilling
// results — so the stronghold-bench command above it stays free of
// simulation imports and may legally measure wall-clock time and run
// scenarios on goroutines (the simulation-scoped determinism rules bar
// both inside this package).
//
// Scenario results are pure functions of the revision: the simulator
// is deterministic and each scenario builds its own engine, so the
// suite may be executed in any order, serially or concurrently, at any
// sim worker count, and produce the same bytes.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"stronghold/internal/baselines"
	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/metrics"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/trace"
)

// Schema identifies the BENCH document layout; bump on breaking change.
const Schema = "stronghold-bench/v1"

// Doc is one benchmark run: the whole BENCH_<rev>.json document.
type Doc struct {
	Schema    string              `json:"schema"`
	Rev       string              `json:"rev"`
	Scenarios map[string]Scenario `json:"scenarios"`
	// Timing, when present, records the harness's wall-clock sweep
	// measurement (stronghold-bench -timing). It is the one
	// machine-dependent section of the document — scenario results are
	// byte-reproducible, wall-clocks are not — so the default document
	// omits it.
	Timing *Timing `json:"timing,omitempty"`
}

// Timing is the wall-clock section: the full suite swept serially and
// with the parallel harness (scenario-level goroutines + sim workers).
type Timing struct {
	SerialWallNS   int64 `json:"serial_wall_ns"`
	ParallelWallNS int64 `json:"parallel_wall_ns"`
	Workers        int   `json:"workers"`
	CPUs           int   `json:"cpus"`
	// SerialAllocs and SerialAllocsPerStep record the heap allocation
	// count of the serial sweep (runtime.MemStats.Mallocs delta) and its
	// ratio to executed simulation events — the sweep-level cross-check
	// of the HOTPATH.md zero-alloc discipline. Like the wall-clocks they
	// are machine-dependent (GC pacing, map growth), but stable enough
	// that an unbudgeted per-event allocation creeping into a hot path
	// shows up as an order-of-magnitude jump.
	SerialAllocs        uint64  `json:"serial_allocs"`
	SerialAllocsPerStep float64 `json:"serial_allocs_per_step"`
}

// Scenario is one benchmark scenario's result set.
type Scenario struct {
	IterTimeNS    int64   `json:"iter_time_ns"`
	Throughput    float64 `json:"throughput_samples_per_s"`
	TFLOPS        float64 `json:"tflops"`
	Overlap       float64 `json:"overlap"`
	UtilCompute   float64 `json:"util_compute"`
	UtilH2D       float64 `json:"util_h2d"`
	UtilD2H       float64 `json:"util_d2h"`
	UtilCPU       float64 `json:"util_cpu"`
	UtilNVMe      float64 `json:"util_nvme"`
	H2DP50NS      int64   `json:"h2d_p50_ns"`
	H2DP99NS      int64   `json:"h2d_p99_ns"`
	Steps         uint64  `json:"steps"`
	MetricSamples uint64  `json:"metric_samples"`
}

// Case is one entry of the suite: a name plus a runner producing the
// scenario result. workers > 1 runs the simulation on the conservative
// parallel engine; the result is byte-identical at any count (baseline
// scenarios are closed-form and ignore it).
type Case struct {
	Name string
	Run  func(workers int) Scenario
}

// iters is the simulated iteration count per scenario: enough for the
// steady state the final-iteration timing reads.
const iters = 3

// strongholdScenario runs the core engine with a metrics collector and
// distills the scenario result.
func strongholdScenario(cfg modelcfg.Config, feat core.Features, workers int) Scenario {
	m := perf.NewModel(cfg, hw.V100Platform())
	e := core.NewEngine(m)
	e.Feat = feat
	e.Workers = workers
	mc := metrics.New()
	e.Metrics = mc
	tr := trace.New()
	res := e.Run(iters, tr)
	s := scenarioFrom(res, m)
	if p50, ok := mc.Quantile(metrics.FamTransferNS, "pcie.h2d", 0.5); ok {
		s.H2DP50NS = p50
	}
	if p99, ok := mc.Quantile(metrics.FamTransferNS, "pcie.h2d", 0.99); ok {
		s.H2DP99NS = p99
	}
	return s
}

// baselineScenario runs one of the comparison engines (no collector:
// the baseline executor has no metrics hooks; plan-driven rows still
// report real overlap and step counts).
func baselineScenario(method modelcfg.Method, cfg modelcfg.Config) Scenario {
	m := perf.NewModel(cfg, hw.V100Platform())
	return scenarioFrom(baselines.Run(method, m), m)
}

func scenarioFrom(res perf.IterationResult, m perf.Model) Scenario {
	return Scenario{
		IterTimeNS:    int64(res.IterTime),
		Throughput:    res.Throughput(m.Cfg.BatchSize),
		TFLOPS:        res.TFLOPS(m.TotalFlops()),
		Overlap:       res.Overlap,
		UtilCompute:   res.Util.Compute,
		UtilH2D:       res.Util.H2D,
		UtilD2H:       res.Util.D2H,
		UtilCPU:       res.Util.CPU,
		UtilNVMe:      res.Util.NVMe,
		Steps:         res.Steps,
		MetricSamples: res.MetricSamples,
	}
}

// Suite returns the benchmark scenarios in their canonical order.
func Suite() []Case {
	cfg1p7 := modelcfg.Config1p7B()
	cfg4b := modelcfg.ConfigForSize(4, 2560, 1)
	return []Case{
		{"stronghold-1p7b", func(w int) Scenario {
			return strongholdScenario(cfg1p7, core.DefaultFeatures(), w)
		}},
		{"stronghold-1p7b-multistream", func(w int) Scenario {
			feat := core.DefaultFeatures()
			feat.Streams = 2
			return strongholdScenario(cfg1p7, feat, w)
		}},
		{"stronghold-4b", func(w int) Scenario {
			return strongholdScenario(cfg4b, core.DefaultFeatures(), w)
		}},
		{"stronghold-4b-nvme", func(w int) Scenario {
			feat := core.DefaultFeatures()
			feat.UseNVMe = true
			return strongholdScenario(cfg4b, feat, w)
		}},
		{"baseline-no-opt-1p7b", func(w int) Scenario {
			return strongholdScenario(cfg1p7, core.Features{Streams: 1}, w)
		}},
		{"l2l-1p7b", func(w int) Scenario {
			return baselineScenario(modelcfg.L2L, cfg1p7)
		}},
		{"zero-offload-1p7b", func(w int) Scenario {
			return baselineScenario(modelcfg.ZeROOffload, cfg1p7)
		}},
		{"zero-infinity-1p7b", func(w int) Scenario {
			return baselineScenario(modelcfg.ZeROInfinity, cfg1p7)
		}},
		{"interleaved-opt-1p7b", func(w int) Scenario {
			return baselineScenario(modelcfg.InterleavedOpt, cfg1p7)
		}},
	}
}

// Load reads and schema-checks one BENCH file.
func Load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("benchmark file %s does not exist — generate it with: stronghold-bench -rev <rev> -out %s", path, path)
		}
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s is not a stronghold-bench document: %w", path, err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("%s: schema mismatch: file says %q, this build expects %q — regenerate it with this stronghold-bench build", path, d.Schema, Schema)
	}
	return &d, nil
}

// Compare diffs two BENCH documents scenario by scenario, writing the
// report to stdout. A scenario regresses when its throughput dropped by
// more than threshold (fractional); scenarios present on only one side
// are reported but do not gate. Exit-style return: 0 clean, 1 load
// error, 2 regression.
func Compare(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	oldDoc, err := Load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "stronghold-bench: %v\n", err)
		return 1
	}
	newDoc, err := Load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "stronghold-bench: %v\n", err)
		return 1
	}
	names := make(map[string]bool)
	for n := range oldDoc.Scenarios {
		names[n] = true
	}
	for n := range newDoc.Scenarios {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(stdout, "comparing %s (%s) -> %s (%s), threshold %.1f%%\n",
		oldPath, oldDoc.Rev, newPath, newDoc.Rev, threshold*100)
	regressions := 0
	for _, n := range sorted {
		o, hasOld := oldDoc.Scenarios[n]
		nw, hasNew := newDoc.Scenarios[n]
		switch {
		case !hasOld:
			fmt.Fprintf(stdout, "  %-28s new scenario (%.2f samples/s)\n", n, nw.Throughput)
		case !hasNew:
			fmt.Fprintf(stdout, "  %-28s removed\n", n)
		default:
			delta := 0.0
			if o.Throughput > 0 {
				delta = nw.Throughput/o.Throughput - 1
			}
			mark := "ok"
			if delta < -threshold {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(stdout, "  %-28s %9.2f -> %9.2f samples/s (%+.2f%%) %s\n",
				n, o.Throughput, nw.Throughput, delta*100, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "%d scenario(s) regressed past %.1f%%\n", regressions, threshold*100)
		return 2
	}
	fmt.Fprintln(stdout, "no regressions")
	return 0
}
