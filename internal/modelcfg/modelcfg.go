// Package modelcfg describes paper-scale Transformer models
// analytically: Table I configurations, parameter counting, FLOP cost
// models, per-training-method memory models (the inputs to Figure 6),
// and the §III-F model-parallel vs data-parallel communication-volume
// model. The functional nn package trains real small models; this
// package reasons about billion-parameter ones.
package modelcfg

import (
	"fmt"
	"math"
)

// Config is a GPT-style Transformer configuration in the paper's
// parameterization (Table I).
type Config struct {
	Layers    int
	Hidden    int
	Heads     int
	SeqLen    int // 1024 throughout the evaluation (§III-F)
	Vocab     int // 30k throughout the evaluation (§III-F)
	BatchSize int // per-GPU batch size
	// ModelParallel is the tensor-model-parallel degree (Table I's last
	// column: 1 on the V100, 8 on the A10 cluster).
	ModelParallel int
}

// DefaultSeqLen and DefaultVocab are the §III-F evaluation constants.
const (
	DefaultSeqLen = 1024
	DefaultVocab  = 30000
)

// NewConfig builds a config with the paper's default sequence length,
// vocabulary, batch size 4 and no model parallelism.
func NewConfig(layers, hidden, heads int) Config {
	return Config{
		Layers: layers, Hidden: hidden, Heads: heads,
		SeqLen: DefaultSeqLen, Vocab: DefaultVocab,
		BatchSize: 4, ModelParallel: 1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0:
		return fmt.Errorf("modelcfg: non-positive layers/hidden/heads in %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("modelcfg: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	case c.SeqLen <= 0 || c.Vocab <= 0 || c.BatchSize <= 0:
		return fmt.Errorf("modelcfg: non-positive seq/vocab/batch in %+v", c)
	case c.ModelParallel <= 0:
		return fmt.Errorf("modelcfg: non-positive model parallelism in %+v", c)
	}
	return nil
}

// LayerParams returns the parameter count of one Transformer block:
// 12·h² weights (4h² attention + 8h² FFN, the §III-F constant) plus 13h
// biases and norms.
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns token + positional embedding parameters.
func (c Config) EmbeddingParams() int64 {
	return int64(c.Vocab)*int64(c.Hidden) + int64(c.SeqLen)*int64(c.Hidden)
}

// TotalParams returns the full model parameter count.
func (c Config) TotalParams() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// ParamsBillion returns TotalParams in billions, the unit of Table I.
func (c Config) ParamsBillion() float64 { return float64(c.TotalParams()) / 1e9 }

// LayerParamsShard returns the per-GPU slice of one layer's parameters
// under tensor model parallelism — the paper's offloading unit in the
// MP>1 experiments (§III-C: "under tensor parallelism, this can be a
// sliced layer").
func (c Config) LayerParamsShard() int64 {
	return c.LayerParams() / int64(c.ModelParallel)
}

// Bytes-per-parameter constants for FP32 training (§V-D reports model
// sizes with FP32 representation).
const (
	BytesParam    = 4 // weights
	BytesGrad     = 4 // gradients
	BytesOptState = 8 // Adam momentum + variance
	// BytesModelState is the full per-parameter model-state footprint:
	// the paper's "model states" = parameters + gradients + optimizer
	// states.
	BytesModelState = BytesParam + BytesGrad + BytesOptState
)

// LayerStateBytes returns one layer's full model-state footprint
// (per-GPU shard).
func (c Config) LayerStateBytes() int64 {
	return c.LayerParamsShard() * BytesModelState
}

// LayerWeightBytes returns one layer shard's parameter bytes — what the
// working window moves per prefetch.
func (c Config) LayerWeightBytes() int64 {
	return c.LayerParamsShard() * BytesParam
}

// LayerGradBytes returns one layer shard's gradient bytes — what BP
// offloads per layer.
func (c Config) LayerGradBytes() int64 {
	return c.LayerParamsShard() * BytesGrad
}

// ActivationBytesPerLayer returns the boundary activation kept per
// layer with layer-wise activation checkpointing: bs·seq·h floats.
func (c Config) ActivationBytesPerLayer() int64 {
	return int64(c.BatchSize) * int64(c.SeqLen) * int64(c.Hidden) / int64(c.ModelParallel) * 4
}

// WorkingActivationBytes approximates the transient activation working
// set while recomputing one layer during BP: attention scores plus MLP
// intermediates, ≈ (34h + 2·heads·seq)·bs·seq bytes.
func (c Config) WorkingActivationBytes() int64 {
	perTok := 34*int64(c.Hidden) + 2*int64(c.Heads)*int64(c.SeqLen)
	return int64(c.BatchSize) * int64(c.SeqLen) * perTok / int64(c.ModelParallel) * 4
}

// ForwardFlopsPerLayer returns the FP FLOPs of one Transformer block
// shard for the configured batch: 24·bs·s·h² matmul FLOPs plus
// 4·bs·s²·h attention-score FLOPs.
func (c Config) ForwardFlopsPerLayer() float64 {
	bs, s, h := float64(c.BatchSize), float64(c.SeqLen), float64(c.Hidden)
	return (24*bs*s*h*h + 4*bs*s*s*h) / float64(c.ModelParallel)
}

// BackwardFlopsPerLayer returns BP FLOPs for one block shard: 2× the
// forward cost, plus one forward recomputation when activation
// checkpointing is on (the paper's footnote 2).
func (c Config) BackwardFlopsPerLayer(checkpointing bool) float64 {
	f := c.ForwardFlopsPerLayer()
	if checkpointing {
		return 3 * f
	}
	return 2 * f
}

// EmbeddingFlops returns FP FLOPs of the embedding + LM-head matmuls.
func (c Config) EmbeddingFlops() float64 {
	bs, s, h, v := float64(c.BatchSize), float64(c.SeqLen), float64(c.Hidden), float64(c.Vocab)
	return 2 * bs * s * h * v / float64(c.ModelParallel)
}

// KernelUtilization returns the fraction of the GPU's SM array one
// training worker's kernels can occupy at the given micro-batch size.
// Small batches under-fill the SMs — the headroom STRONGHOLD's
// multi-stream optimization (§IV-A) exploits. Calibrated so a single
// bs=4 worker runs near the 25–30% of peak that Megatron-LM achieves on
// V100-class FP32 training, saturating around 60% for large batches.
func KernelUtilization(batchSize int) float64 {
	return math.Min(0.60, 0.17+0.10*math.Log2(1+float64(batchSize)))
}

// MultiStreamCap is the aggregate SM utilization achievable by
// concurrent streams — below 1.0 because of scheduler serialization and
// memory-port contention. Together with KernelUtilization it bounds
// multi-streamed STRONGHOLD near the paper's 42–57% of hardware peak at
// its largest models (§VI-B) while allowing the 1.7–2.1× Fig. 11
// speedups at small ones.
const MultiStreamCap = 0.75
