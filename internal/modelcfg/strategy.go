// strategy.go is the offload-method strategy registry: every training
// method the repo knows — the paper's comparison set, STRONGHOLD
// itself, and the methods ported onto the plan executor since — is one
// MethodInfo row here. The row carries everything the rest of the tree
// used to hard-code in switches: the canonical CLI name and aliases,
// which execution engine runs it, whether it schedules through the
// plan IR (and therefore supports traces and fault plans), its memory
// model, and which solver decision variables it exposes. core.Engine,
// internal/baselines, internal/expt and all five commands dispatch
// through Lookup/ParseMethods, so adding a method is one row plus its
// planner — not a sweep over scattered switches.
package modelcfg

import (
	"fmt"
	"sort"
	"strings"
)

// EngineKind selects which execution engine runs a method.
type EngineKind int

const (
	// EngineBaseline runs through internal/baselines on a single GPU
	// (closed-form or plan-driven comparison schedules).
	EngineBaseline EngineKind = iota
	// EngineCore runs through core.Engine, the full STRONGHOLD
	// event-driven simulation.
	EngineCore
	// EngineCluster runs through internal/cluster's distributed
	// engines (ZeRO-2/3 data parallelism).
	EngineCluster
)

// DecisionVars declares the solver decision variables a method
// exposes. The §III-D solver optimizes exactly the declared set:
// Window is the working-window size m, OptPlacement the fractional
// GPU/CPU optimizer split g (co-optimized when both are set).
type DecisionVars struct {
	Window       bool
	OptPlacement bool
}

// MethodInfo is one registered offload method.
type MethodInfo struct {
	M       Method
	Key     string   // canonical kebab-case CLI name
	Display string   // paper name (Method.String)
	Aliases []string // accepted alternate CLI spellings
	Engine  EngineKind
	// PlanDriven marks methods whose schedule is built as a plan IR
	// iteration and run on the shared executor — these produce real
	// traces and accept fault plans.
	PlanDriven bool
	// SingleGPU marks members of the single-GPU comparison set that
	// "-m all" and the Fig. 6a/7/8 experiments sweep.
	SingleGPU bool
	// Distributed marks methods that only make sense on a multi-node
	// platform (cluster experiments).
	Distributed bool
	// NVMe marks methods whose states live on the secondary-storage
	// tier (the engines enable their NVMe staging path from this flag).
	NVMe bool
	// Footprint is the method's memory model (memmodel.go).
	Footprint func(c Config, windowLayers, workers int) MemoryFootprint
	Decisions DecisionVars
}

// methods is the registry in display order. Order is load-bearing:
// ParseMethods("all"), MethodList and the figure sweeps iterate it, so
// it must stay deterministic (never range a map for this).
var methods = []MethodInfo{
	{
		M: Megatron, Key: "megatron-lm", Display: "Megatron-LM",
		Aliases: []string{"megatron"},
		Engine:  EngineBaseline, SingleGPU: true,
		Footprint: footprintMegatron,
	},
	{
		M: L2L, Key: "l2l", Display: "L2L",
		Engine: EngineBaseline, PlanDriven: true, SingleGPU: true,
		Footprint: footprintL2L,
	},
	{
		M: ZeROOffload, Key: "zero-offload", Display: "ZeRO-Offload",
		Engine: EngineBaseline, PlanDriven: true, SingleGPU: true,
		Footprint: footprintZeROOffload,
	},
	{
		M: ZeROInfinity, Key: "zero-infinity", Display: "ZeRO-Infinity",
		Engine: EngineBaseline, PlanDriven: true, SingleGPU: true,
		Footprint: footprintZeROInfinity(false),
	},
	{
		M: ZeROInfinityNVMe, Key: "zero-infinity-nvme", Display: "ZeRO-Infinity (NVMe)",
		Engine: EngineBaseline, PlanDriven: true, NVMe: true,
		Footprint: footprintZeROInfinity(true),
	},
	{
		M: InterleavedOpt, Key: "interleaved-opt", Display: "Interleaved-Opt",
		Aliases: []string{"deep-opt-states"},
		Engine:  EngineBaseline, PlanDriven: true,
		Footprint: footprintInterleavedOpt,
		Decisions: DecisionVars{OptPlacement: true},
	},
	{
		M: Stronghold, Key: "stronghold", Display: "STRONGHOLD",
		Engine: EngineCore, PlanDriven: true, SingleGPU: true,
		Footprint: footprintStronghold(false),
		Decisions: DecisionVars{Window: true, OptPlacement: true},
	},
	{
		M: StrongholdNVMe, Key: "stronghold-nvme", Display: "STRONGHOLD (NVMe)",
		Engine: EngineCore, PlanDriven: true, NVMe: true,
		Footprint: footprintStronghold(true),
		Decisions: DecisionVars{Window: true, OptPlacement: true},
	},
	{
		M: ZeRO2, Key: "zero-2", Display: "ZeRO-2",
		Engine: EngineCluster, Distributed: true,
		Footprint: footprintZeRO(false),
	},
	{
		M: ZeRO3, Key: "zero-3", Display: "ZeRO-3",
		Engine: EngineCluster, Distributed: true,
		Footprint: footprintZeRO(true),
	},
}

// byMethod and byKey are lookup indexes over the registry slice. They
// are only ever read by key — never ranged — so map iteration order
// cannot leak into any deterministic path.
var (
	byMethod = func() map[Method]*MethodInfo {
		idx := make(map[Method]*MethodInfo, len(methods))
		for i := range methods {
			idx[methods[i].M] = &methods[i]
		}
		return idx
	}()
	byKey = func() map[string]*MethodInfo {
		idx := make(map[string]*MethodInfo, len(methods))
		for i := range methods {
			idx[methods[i].Key] = &methods[i]
			for _, a := range methods[i].Aliases {
				idx[a] = &methods[i]
			}
		}
		return idx
	}()
)

// Lookup returns the registry row for m, or nil if unregistered.
func Lookup(m Method) *MethodInfo { return byMethod[m] }

// MethodKey returns m's canonical CLI name ("" if unregistered).
func MethodKey(m Method) string {
	if info := Lookup(m); info != nil {
		return info.Key
	}
	return ""
}

// Methods returns the registry rows in display order.
func Methods() []MethodInfo {
	out := make([]MethodInfo, len(methods))
	copy(out, methods)
	return out
}

// SingleGPUMethods is the single-GPU comparison set in display order —
// what "-m all" and the Fig. 6a capacity sweep expand to.
func SingleGPUMethods() []Method {
	var out []Method
	for _, info := range methods {
		if info.SingleGPU {
			out = append(out, info.M)
		}
	}
	return out
}

// ParseMethod resolves one method name: the canonical kebab key, an
// alias, or the display name (case-insensitive).
func ParseMethod(name string) (Method, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if info, ok := byKey[key]; ok {
		return info.M, nil
	}
	for i := range methods {
		if strings.EqualFold(methods[i].Display, key) {
			return methods[i].M, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (try one of: %s)", name, strings.Join(MethodKeys(), ", "))
}

// ParseMethods expands a method spec shared by every command's -m /
// -methods flag: a single name, a comma-separated list, or "all" (the
// single-GPU comparison set). Duplicates are collapsed, order
// preserved.
func ParseMethods(spec string) ([]Method, error) {
	var out []Method
	seen := make(map[Method]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var batch []Method
		if strings.EqualFold(part, "all") {
			batch = SingleGPUMethods()
		} else {
			m, err := ParseMethod(part)
			if err != nil {
				return nil, err
			}
			batch = []Method{m}
		}
		for _, m := range batch {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty method spec %q", spec)
	}
	return out, nil
}

// MethodKeys returns every canonical key in display order.
func MethodKeys() []string {
	out := make([]string, len(methods))
	for i, info := range methods {
		out[i] = info.Key
	}
	return out
}

// MethodList renders the registry as the shared "-m list" output:
// one line per method with its engine, capabilities and aliases.
func MethodList() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-22s %-9s %s\n", "name", "method", "engine", "notes")
	for _, info := range methods {
		engine := "baseline"
		switch info.Engine {
		case EngineCore:
			engine = "core"
		case EngineCluster:
			engine = "cluster"
		}
		var notes []string
		if info.PlanDriven {
			notes = append(notes, "plan-driven")
		}
		if info.SingleGPU {
			notes = append(notes, `in "all"`)
		}
		if info.Distributed {
			notes = append(notes, "distributed")
		}
		if info.Decisions.Window && info.Decisions.OptPlacement {
			notes = append(notes, "solver: window+placement")
		} else if info.Decisions.OptPlacement {
			notes = append(notes, "solver: placement")
		}
		if len(info.Aliases) > 0 {
			aliases := append([]string(nil), info.Aliases...)
			sort.Strings(aliases)
			notes = append(notes, "aliases: "+strings.Join(aliases, ","))
		}
		fmt.Fprintf(&b, "%-20s %-22s %-9s %s\n", info.Key, info.Display, engine, strings.Join(notes, "; "))
	}
	return b.String()
}
