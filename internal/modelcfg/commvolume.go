package modelcfg

// CommVolume implements the paper's §III-F cross-server
// communication-volume model for converting w-way model parallelism to
// w-way data parallelism.

// DataParallelVolume returns V_dp = (w−1)·w · (12·n·hd² + hd·vs):
// per-iteration gradient all-reduce traffic for w-way data parallelism.
func DataParallelVolume(c Config, w int) float64 {
	n, hd, vs := float64(c.Layers), float64(c.Hidden), float64(c.Vocab)
	return float64((w-1)*w) * (12*n*hd*hd + hd*vs)
}

// ModelParallelVolume returns V_mp = (w−1)·w · n · bs · seq · hd:
// per-iteration activation exchange traffic for w-way model parallelism.
func ModelParallelVolume(c Config, w int) float64 {
	n, bs, seq, hd := float64(c.Layers), float64(c.BatchSize), float64(c.SeqLen), float64(c.Hidden)
	return float64((w-1)*w) * n * bs * seq * hd
}

// VolumeRatio returns V_mp / V_dp — how much traffic STRONGHOLD saves
// by replacing model parallelism with data parallelism (>1 means data
// parallelism communicates less).
func VolumeRatio(c Config, w int) float64 {
	return ModelParallelVolume(c, w) / DataParallelVolume(c, w)
}

// VolumeRatioSimplified evaluates the paper's closed form for
// seq = 1024 and vs = 30k:
//
//	V_mp/V_dp = bs / (3·hd/256 + 30/n) = k·bs,  k = 1/(3·hd/256 + 30/n).
func VolumeRatioSimplified(c Config) float64 {
	hd, n, bs := float64(c.Hidden), float64(c.Layers), float64(c.BatchSize)
	k := 1 / (3*hd/256 + 30/n)
	return k * bs
}
