package modelcfg

import (
	"testing"
)

// TestConfigSpecCanonicalIdempotent pins the property the serve cache
// key depends on: canonicalization is a fixed point, and Layers wins
// over SizeBillions.
func TestConfigSpecCanonicalIdempotent(t *testing.T) {
	specs := []ConfigSpec{
		{},
		{SizeBillions: 4},
		{Layers: 20},
		{Layers: 20, SizeBillions: 99},
		{SizeBillions: 1.7, Hidden: 4096, BatchSize: 2, ModelParallel: 8},
	}
	for _, s := range specs {
		c1 := s.Canonical()
		if c2 := c1.Canonical(); c1 != c2 {
			t.Errorf("Canonical not idempotent: %+v -> %+v -> %+v", s, c1, c2)
		}
	}
	c := ConfigSpec{Layers: 20, SizeBillions: 99}.Canonical()
	if c.SizeBillions != 0 || c.Layers != 20 {
		t.Errorf("Layers-wins rule not applied: %+v", c)
	}
	if c.Hidden != 2560 || c.BatchSize != 4 || c.ModelParallel != 1 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

// TestConfigSpecResolve checks Resolve against the direct constructors
// and its error paths.
func TestConfigSpecResolve(t *testing.T) {
	got, err := ConfigSpec{Layers: 20, BatchSize: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := NewConfig(20, 2560, 16)
	want.BatchSize = 2
	if got != want {
		t.Errorf("Resolve(layers=20) = %+v, want %+v", got, want)
	}

	bySize, err := ConfigSpec{SizeBillions: 4}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if ref := ConfigForSize(4, 2560, 1); bySize != ref {
		t.Errorf("Resolve(size=4) = %+v, want %+v", bySize, ref)
	}

	if _, err := (ConfigSpec{}).Resolve(); err == nil {
		t.Error("empty spec resolved without error")
	}
	if _, err := (ConfigSpec{Layers: -1, SizeBillions: 2}).Resolve(); err == nil {
		t.Error("negative layers resolved without error")
	}
}

// TestMethodSummaries pins the wire form of the registry: one row per
// method in display order, engine names rendered, decision variables
// carried through.
func TestMethodSummaries(t *testing.T) {
	rows := MethodSummaries()
	if len(rows) != len(methods) {
		t.Fatalf("%d summaries, registry has %d rows", len(rows), len(methods))
	}
	for i, row := range rows {
		if row.Key != methods[i].Key {
			t.Errorf("row %d key %q, want %q (display order must hold)", i, row.Key, methods[i].Key)
		}
	}
	byKey := make(map[string]MethodSummary)
	for _, r := range rows {
		byKey[r.Key] = r
	}
	sh := byKey["stronghold"]
	if sh.Engine != "core" || !sh.PlanDriven || !sh.Decisions.Window || !sh.Decisions.OptPlacement {
		t.Errorf("stronghold summary wrong: %+v", sh)
	}
	if z := byKey["zero-3"]; z.Engine != "cluster" || !z.Distributed {
		t.Errorf("zero-3 summary wrong: %+v", z)
	}
	if m := byKey["megatron-lm"]; m.Engine != "baseline" || m.PlanDriven {
		t.Errorf("megatron summary wrong: %+v", m)
	}
}
