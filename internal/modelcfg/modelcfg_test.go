package modelcfg

import (
	"math"
	"testing"
	"testing/quick"

	"stronghold/internal/hw"
)

func TestTableISizes(t *testing.T) {
	// Every Table I entry's computed size must match the paper's stated
	// billions within rounding (±0.15 B — the paper rounds to one
	// decimal and counts slightly different embedding terms).
	want := []float64{
		1.7, 4.0, 5.9, 6.0, 6.6, 20.5, 23.7, 39.4,
		4.0,
		6.2, 10.0,
		3.4, 4.7, 7.8, 23.2, 63.2, 75.7, 82.0, 103.2, 367.6, 524.5,
		19.8, 25.4,
		28.7, 32.1, 66.7,
	}
	entries := TableI()
	if len(entries) != len(want) {
		t.Fatalf("TableI has %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		tol := 0.15 + 0.03*want[i] // absolute + 3% relative (paper rounding)
		if math.Abs(e.SizeB-want[i]) > tol {
			t.Errorf("entry %d (%d layers, h=%d): %.2fB, paper says %.1fB",
				i, e.Config.Layers, e.Config.Hidden, e.SizeB, want[i])
		}
		if err := e.Config.Validate(); err != nil {
			t.Errorf("entry %d invalid: %v", i, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := NewConfig(20, 2560, 16)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Layers: 0, Hidden: 256, Heads: 16, SeqLen: 1024, Vocab: 30000, BatchSize: 4, ModelParallel: 1},
		{Layers: 2, Hidden: 255, Heads: 16, SeqLen: 1024, Vocab: 30000, BatchSize: 4, ModelParallel: 1},
		{Layers: 2, Hidden: 256, Heads: 16, SeqLen: 0, Vocab: 30000, BatchSize: 4, ModelParallel: 1},
		{Layers: 2, Hidden: 256, Heads: 16, SeqLen: 1024, Vocab: 30000, BatchSize: 4, ModelParallel: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLayerParamsFormula(t *testing.T) {
	c := NewConfig(1, 2560, 16)
	want := int64(12*2560*2560 + 13*2560)
	if c.LayerParams() != want {
		t.Fatalf("LayerParams = %d, want %d", c.LayerParams(), want)
	}
}

func TestNamedConfigs(t *testing.T) {
	if b := Config1p7B().ParamsBillion(); math.Abs(b-1.7) > 0.1 {
		t.Fatalf("1.7B config is %.2fB", b)
	}
	if b := Config4B().ParamsBillion(); math.Abs(b-4.0) > 0.1 {
		t.Fatalf("4B config is %.2fB", b)
	}
	if b := Config39p5B().ParamsBillion(); math.Abs(b-39.4) > 0.2 {
		t.Fatalf("39.5B config is %.2fB", b)
	}
	if c := Config3B(); c.BatchSize != 1 || math.Abs(c.ParamsBillion()-3.0) > 0.2 {
		t.Fatalf("3B config: bs=%d size=%.2f", c.BatchSize, c.ParamsBillion())
	}
}

func TestConfigForSize(t *testing.T) {
	for _, sizeB := range []float64{1.7, 10, 40, 100} {
		c := ConfigForSize(sizeB, 2560, 1)
		if got := c.ParamsBillion(); math.Abs(got-sizeB) > 0.06*sizeB+0.1 {
			t.Fatalf("ConfigForSize(%v) produced %.2fB", sizeB, got)
		}
	}
	// Degenerate tiny request still yields a valid model.
	if c := ConfigForSize(0.001, 2560, 1); c.Layers < 1 {
		t.Fatal("layers must be at least 1")
	}
}

func TestShardingDividesLayerParams(t *testing.T) {
	c := NewConfig(24, 5120, 16)
	c.ModelParallel = 8
	if c.LayerParamsShard() != c.LayerParams()/8 {
		t.Fatal("shard must be 1/8 of the layer")
	}
	if c.LayerStateBytes() != c.LayerParamsShard()*16 {
		t.Fatal("model state is 16 bytes/param")
	}
	if c.LayerWeightBytes() != c.LayerParamsShard()*4 || c.LayerGradBytes() != c.LayerParamsShard()*4 {
		t.Fatal("weights and grads are 4 bytes/param each")
	}
}

func TestFlopsModel(t *testing.T) {
	c := Config1p7B()
	fwd := c.ForwardFlopsPerLayer()
	// 24·4·1024·2560² + 4·4·1024²·2560 ≈ 687 GFLOPs.
	want := 24*4*1024*2560*2560 + 4*4*1024*1024*2560
	if math.Abs(fwd-float64(want)) > 1 {
		t.Fatalf("forward flops %v, want %v", fwd, want)
	}
	if c.BackwardFlopsPerLayer(false) != 2*fwd {
		t.Fatal("backward without checkpointing is 2x forward")
	}
	if c.BackwardFlopsPerLayer(true) != 3*fwd {
		t.Fatal("backward with checkpointing adds one recompute")
	}
	if c.EmbeddingFlops() <= 0 {
		t.Fatal("embedding flops must be positive")
	}
}

func TestKernelUtilizationMonotone(t *testing.T) {
	prev := 0.0
	for _, bs := range []int{1, 2, 4, 8, 16, 32} {
		u := KernelUtilization(bs)
		if u <= prev {
			t.Fatalf("utilization must grow with batch: %v at bs=%d", u, bs)
		}
		if u <= 0 || u > MultiStreamCap+0.05 {
			t.Fatalf("utilization %v out of range at bs=%d", u, bs)
		}
		prev = u
	}
	if KernelUtilization(1024) > 0.60 {
		t.Fatal("utilization must saturate")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		Megatron: "Megatron-LM", L2L: "L2L", ZeROOffload: "ZeRO-Offload",
		ZeROInfinity: "ZeRO-Infinity", ZeROInfinityNVMe: "ZeRO-Infinity (NVMe)",
		Stronghold: "STRONGHOLD", StrongholdNVMe: "STRONGHOLD (NVMe)",
		ZeRO2: "ZeRO-2", ZeRO3: "ZeRO-3",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// At scale (where per-parameter terms dominate the fixed window),
	// GPU demand must order:
	// Megatron > ZeRO-Offload > ZeRO-Infinity > STRONGHOLD.
	c := NewConfig(260, 2560, 16) // the 20.5B Table I row
	mega := Footprint(Megatron, c, 0, 1)
	zoff := Footprint(ZeROOffload, c, 0, 1)
	zinf := Footprint(ZeROInfinity, c, 0, 1)
	sh := Footprint(Stronghold, c, 8, 1)
	if !(mega.GPU > zoff.GPU && zoff.GPU > zinf.GPU && zinf.GPU > sh.GPU) {
		t.Fatalf("GPU footprint ordering violated: mega=%d zoff=%d zinf=%d sh=%d",
			mega.GPU, zoff.GPU, zinf.GPU, sh.GPU)
	}
	// STRONGHOLD's host demand is 16 bytes/param plus the offloaded
	// activation checkpoints.
	wantHost := c.TotalParams()*16 + int64(c.Layers)*c.ActivationBytesPerLayer()
	if sh.Host != wantHost {
		t.Fatalf("SH host = %d, want %d", sh.Host, wantHost)
	}
	// NVMe variants move the 16 bytes/param of model state to disk,
	// keeping only a staging ring (plus checkpoints) on the host.
	shn := Footprint(StrongholdNVMe, c, 8, 1)
	if shn.Disk != c.TotalParams()*16 || shn.Host >= sh.Host {
		t.Fatalf("NVMe variant wrong: disk=%d host=%d", shn.Disk, shn.Host)
	}
}

func TestFootprintWindowAndWorkersGrowGPU(t *testing.T) {
	c := Config4B()
	small := Footprint(Stronghold, c, 4, 1)
	large := Footprint(Stronghold, c, 12, 1)
	if large.GPU <= small.GPU {
		t.Fatal("larger window must use more GPU memory")
	}
	multi := Footprint(Stronghold, c, 4, 2)
	if multi.GPU <= small.GPU {
		t.Fatal("second worker must add activation memory")
	}
	// But far less than double: parameters are shared (§IV-A).
	if multi.GPU >= 2*small.GPU {
		t.Fatal("workers must share the parameter copy")
	}
}

func TestLargestTrainableReproducesFig6aOrdering(t *testing.T) {
	p := hw.V100Platform()
	batch := []int{2, 4}
	type res struct {
		m Method
		b float64
	}
	var rs []res
	for _, m := range []Method{Megatron, L2L, ZeROOffload, ZeROInfinity, Stronghold} {
		best := 0.0
		for _, h := range []int{2560, 4096, 5120} {
			b := LargestTrainable(m, h, 1, batch, 8, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
			if b > best {
				best = b
			}
		}
		rs = append(rs, res{m, best})
	}
	// Ordering: Megatron < {L2L, ZeRO-Offload} < ZeRO-Infinity < SH.
	mega, l2l, zoff, zinf, sh := rs[0].b, rs[1].b, rs[2].b, rs[3].b, rs[4].b
	if !(mega < l2l && mega < zoff) {
		t.Fatalf("offloading must beat Megatron: %v", rs)
	}
	if !(zinf > zoff && zinf > l2l) {
		t.Fatalf("ZeRO-Infinity must beat static offloading: %v", rs)
	}
	if !(sh > zinf) {
		t.Fatalf("STRONGHOLD must beat ZeRO-Infinity: %v", rs)
	}
	// Headline magnitudes (±25% of the paper's numbers).
	approx := func(got, want float64) bool { return got > want*0.75 && got < want*1.25 }
	if !approx(mega, 1.7) {
		t.Errorf("Megatron max %.2fB, paper 1.7B", mega)
	}
	if !approx(sh, 39.5) {
		t.Errorf("STRONGHOLD max %.2fB, paper 39.5B", sh)
	}
	if !approx(zinf, 20.6) {
		t.Errorf("ZeRO-Infinity max %.2fB, paper 20.6B", zinf)
	}
	if !approx(l2l, 6.0) || !approx(zoff, 6.0) {
		t.Errorf("L2L %.2fB / ZeRO-Offload %.2fB, paper ≈6B", l2l, zoff)
	}
}

func TestCommVolumeSimplifiedMatchesFull(t *testing.T) {
	// At seq=1024, vs=30k the closed form must match the full ratio.
	c := NewConfig(50, 4096, 16)
	c.BatchSize = 16
	full := VolumeRatio(c, 8)
	simp := VolumeRatioSimplified(c)
	if math.Abs(full-simp)/full > 0.01 {
		t.Fatalf("closed form %v vs full %v", simp, full)
	}
}

func TestCommVolumePaperExample(t *testing.T) {
	// §III-F: 20B model, bs=16, n=50, hd=4K → roughly half the traffic
	// ("STRONGHOLD halfs the communication traffics").
	c := NewConfig(50, 4096, 16)
	c.BatchSize = 16
	ratio := VolumeRatioSimplified(c)
	// k = 1/(3·4096/256 + 30/50) = 1/48.6; ratio = 16/48.6 ≈ 0.33 …
	// meaning V_mp ≈ 0.33·V_dp? No: the paper reports DP halving MP
	// traffic, i.e. V_mp/V_dp ≈ 2 requires bs ≈ 2/k ≈ 97 … the paper's
	// own arithmetic. We verify the formula's value, not the prose.
	want := 16.0 / (3*4096.0/256 + 30.0/50)
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("ratio %v, want %v", ratio, want)
	}
}

func TestCommVolumeGrowsWithBatch(t *testing.T) {
	c := NewConfig(50, 4096, 16)
	c.BatchSize = 4
	r4 := VolumeRatio(c, 8)
	c.BatchSize = 32
	r32 := VolumeRatio(c, 8)
	if r32 <= r4 {
		t.Fatal("MP/DP ratio must grow with batch size (DP wins at large batch)")
	}
}

// Property: footprints are monotone in model size for every method.
func TestPropertyFootprintMonotone(t *testing.T) {
	methods := []Method{Megatron, L2L, ZeROOffload, ZeROInfinity, ZeROInfinityNVMe, Stronghold, StrongholdNVMe}
	f := func(layersRaw uint8, mIdx uint8) bool {
		layers := int(layersRaw%100) + 1
		m := methods[int(mIdx)%len(methods)]
		small := Footprint(m, NewConfig(layers, 2560, 16), 8, 1)
		big := Footprint(m, NewConfig(layers+10, 2560, 16), 8, 1)
		return big.GPU >= small.GPU && big.Host >= small.Host && big.Disk >= small.Disk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LargestTrainable is monotone in GPU capacity.
func TestPropertyLargestTrainableMonotoneInMemory(t *testing.T) {
	f := func(gbRaw uint8) bool {
		gb := int64(gbRaw%64+8) * hw.GB
		small := LargestTrainable(Megatron, 2560, 1, []int{4}, 0, gb, 632*hw.GB, 0)
		big := LargestTrainable(Megatron, 2560, 1, []int{4}, 0, 2*gb, 632*hw.GB, 0)
		return big >= small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
