package modelcfg

// TableIEntry is one row expansion of the paper's Table I: a concrete
// (layers, hidden, MP) configuration with its nominal size in billions.
type TableIEntry struct {
	SizeB  float64
	Config Config
}

// TableI returns the paper's Table I model family. Heads is 16 in every
// row; sequence length 1024 and vocabulary 30k follow §III-F.
func TableI() []TableIEntry {
	type row struct {
		layers, hidden, mp int
	}
	rows := []row{
		// hidden 2560, MP 1 — 1.7, 4.0, 5.9, 6.0, 6.6, 20.5, 23.7, 39.4 B.
		{20, 2560, 1}, {50, 2560, 1}, {74, 2560, 1}, {75, 2560, 1},
		{83, 2560, 1}, {260, 2560, 1}, {300, 2560, 1}, {500, 2560, 1},
		// hidden 4096, MP 1 — 4.0 B.
		{19, 4096, 1},
		// hidden 5120, MP 1 — 6.2, 10.0 B.
		{19, 5120, 1}, {31, 5120, 1},
		// hidden 5120, MP 8 — 3.4 … 524.5 B. The 4.7 B row needs 14
		// layers to reach the stated size; the paper's table lists 12,
		// which computes to 3.9 B under its own 12·h² formula — we use
		// the layer count that reproduces the stated size.
		{10, 5120, 8}, {14, 5120, 8}, {24, 5120, 8}, {72, 5120, 8},
		{200, 5120, 8}, {240, 5120, 8}, {260, 5120, 8}, {328, 5120, 8},
		{1174, 5120, 8}, {1676, 5120, 8},
		// hidden 8192, MP 8 — 19.8, 25.4 B.
		{24, 8192, 8}, {31, 8192, 8},
		// wide rows, MP 8 — 28.7, 32.1, 66.7 B.
		{31, 8704, 8}, {31, 9216, 8}, {31, 13312, 8},
	}
	entries := make([]TableIEntry, 0, len(rows))
	for _, r := range rows {
		c := NewConfig(r.layers, r.hidden, 16)
		c.ModelParallel = r.mp
		entries = append(entries, TableIEntry{SizeB: c.ParamsBillion(), Config: c})
	}
	return entries
}

// ConfigForSize returns a configuration of approximately sizeB billion
// parameters by scaling depth at the given hidden width — how the paper
// grows models ("vary the hidden dimension … and the number of layers",
// §V-B).
func ConfigForSize(sizeB float64, hidden int, mp int) Config {
	c := NewConfig(1, hidden, 16)
	c.ModelParallel = mp
	target := int64(sizeB * 1e9)
	perLayer := c.LayerParams()
	layers := (target - c.EmbeddingParams() + perLayer/2) / perLayer
	if layers < 1 {
		layers = 1
	}
	c.Layers = int(layers)
	return c
}

// Named reference configurations used throughout the evaluation.

// Config1p7B is the 1.7 B model — the largest Megatron-LM supports on a
// 32 GB V100 and the common model of Figures 1b, 8a, 9 and 11.
func Config1p7B() Config { return NewConfig(20, 2560, 16) }

// Config4B is the 4 B model of Figure 4's trace and Figure 14's
// ablation.
func Config4B() Config { return NewConfig(50, 2560, 16) }

// Config39p5B is the largest model STRONGHOLD trains on the V100
// (Figures 6a, 9).
func Config39p5B() Config { return NewConfig(500, 2560, 16) }

// Config3B returns the largest model ZeRO-2 supports on the A10 cluster
// (Figure 12), with batch size 1 per GPU as in the paper.
func Config3B() Config {
	c := NewConfig(38, 2560, 16)
	c.BatchSize = 1
	return c
}
