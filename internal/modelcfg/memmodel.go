package modelcfg

import "fmt"

// Method identifies a training scheme in the evaluation.
type Method int

const (
	// Megatron is NVIDIA's resident-GPU Megatron-LM baseline.
	Megatron Method = iota
	// L2L keeps one Transformer block on the GPU, moving parameters
	// synchronously (Pudipeddi et al.).
	L2L
	// ZeROOffload keeps parameters on the GPU and optimizer states on
	// the CPU (Ren et al., ATC'21).
	ZeROOffload
	// ZeROInfinity partitions all model states into CPU RAM
	// (Rajbhandari et al., SC'21), CPU-only mode.
	ZeROInfinity
	// ZeROInfinityNVMe is ZeRO-Infinity with states on NVMe.
	ZeROInfinityNVMe
	// Stronghold is the paper's dynamic working-window offloading.
	Stronghold
	// StrongholdNVMe is STRONGHOLD with the secondary-storage tier
	// (§III-G).
	StrongholdNVMe
	// ZeRO2 partitions optimizer states + gradients across data-parallel
	// ranks (distributed experiments only).
	ZeRO2
	// ZeRO3 additionally partitions parameters.
	ZeRO3
	// InterleavedOpt is Deep Optimizer States' subgroup-interleaved
	// CPU/GPU optimizer placement: parameters stay resident like
	// ZeRO-Offload, but each layer's optimizer update is split between
	// the CPU pool and the GPU, with moment-chunk transfers overlapped
	// against neighbouring subgroups' compute.
	InterleavedOpt
)

// String returns the method's paper name.
func (m Method) String() string {
	if info := Lookup(m); info != nil {
		return info.Display
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Calibrated per-method coefficients (see DESIGN.md §6). These are the
// handful of constants that make the byte-accurate capacity model land
// on the paper's measured maxima; each is documented where it is used.
const (
	// runtimeWorkspaceBytes is the CUDA context + cuBLAS/cuDNN
	// workspace every method pays on the GPU.
	runtimeWorkspaceBytes = int64(1) << 30 // 1 GB

	// l2lOptStateBytesPerParam models L2L keeping Adam moments on the
	// GPU in half precision (2+2 bytes), its documented configuration.
	l2lOptStateBytesPerParam = 4

	// zeroInfinityGPUBytesPerParam is ZeRO-Infinity's per-parameter GPU
	// overhead for the runtime model-refactoring copy the paper
	// describes in §VI-A (fused partition buffers + a refactored copy).
	zeroInfinityGPUBytesPerParam = 1.4

	// zeroInfinityHostBytesPerParam is ZeRO-Infinity's CPU-side
	// footprint in FP32 mode: params + grads + FP32 master params +
	// momentum + variance (20) plus partition working buffers (~3).
	zeroInfinityHostBytesPerParam = 23

	// zeroInfinityNVMeBufferBytes is the fixed fused-buffer budget of
	// ZeRO-Infinity's NVMe mode, which streams fine-grained partitions
	// from disk instead of keeping per-parameter GPU state — this is
	// how it reaches its much larger (if slow) trainable sizes
	// (Fig. 1a).
	zeroInfinityNVMeBufferBytes = int64(6) << 30

	// strongholdHostBytesPerParam: parameters + gradients + Adam
	// moments all live in pinned host RAM (16), matching §III's "most
	// of the optimizer states in the CPU RAM".
	strongholdHostBytesPerParam = 16

	// gradBufferLayers is the number of per-layer gradient staging
	// buffers ZeRO-Offload keeps on the GPU while streaming gradients
	// to the CPU.
	gradBufferLayers = 2

	// interleavedStageBuffers is the number of per-layer moment-chunk
	// staging buffers the interleaved optimizer keeps on the GPU: one
	// subgroup updating while the next subgroup's moments are in
	// flight (Deep Optimizer States' double-buffered interleave).
	interleavedStageBuffers = 2
)

// MemoryFootprint is the per-device byte demand of one training setup.
type MemoryFootprint struct {
	GPU  int64 // per-GPU bytes
	Host int64 // per-node host bytes (pinned + pageable)
	Disk int64 // NVMe bytes
}

// activationBytes returns checkpointed activation storage for the whole
// model plus the transient working set of the layer being (re)computed.
func activationBytes(c Config) int64 {
	return int64(c.Layers)*c.ActivationBytesPerLayer() + c.WorkingActivationBytes()
}

// residentEmbeddingBytes is the embedding + head storage STRONGHOLD and
// L2L keep on the GPU (weights + gradients; Figure 3 keeps first/last
// layers resident).
func residentEmbeddingBytes(c Config) int64 {
	return c.EmbeddingParams() / int64(c.ModelParallel) * (BytesParam + BytesGrad)
}

// Footprint returns the memory demand of training config c with the
// given method. windowLayers is the GPU working-window size for
// STRONGHOLD (ignored elsewhere); workers is the number of concurrent
// multi-stream training workers (≥1; extra workers add activation and
// gradient space but share one parameter copy, §IV-A). It dispatches
// through the method registry (strategy.go); each method's memory
// model is its MethodInfo.Footprint hook.
func Footprint(m Method, c Config, windowLayers, workers int) MemoryFootprint {
	info := Lookup(m)
	if info == nil || info.Footprint == nil {
		panic(fmt.Sprintf("modelcfg: unknown method %v", m))
	}
	if workers < 1 {
		workers = 1
	}
	return info.Footprint(c, windowLayers, workers)
}

func footprintMegatron(c Config, _, _ int) MemoryFootprint {
	shard := c.TotalParams() / int64(c.ModelParallel)
	return MemoryFootprint{GPU: shard*BytesModelState + activationBytes(c) + runtimeWorkspaceBytes}
}

// footprintL2L: one resident block (double-buffered) + full-model Adam
// moments on the GPU + full activations; parameters live on the host.
func footprintL2L(c Config, _, _ int) MemoryFootprint {
	shard := c.TotalParams() / int64(c.ModelParallel)
	return MemoryFootprint{
		GPU: shard*l2lOptStateBytesPerParam +
			2*c.LayerParamsShard()*(BytesParam+BytesGrad) +
			activationBytes(c) + runtimeWorkspaceBytes,
		Host: shard * BytesParam,
	}
}

// footprintZeROOffload: parameters resident on GPU; gradients stream
// out through two staging buffers; grads + moments on the CPU.
func footprintZeROOffload(c Config, _, _ int) MemoryFootprint {
	shard := c.TotalParams() / int64(c.ModelParallel)
	return MemoryFootprint{
		GPU: shard*BytesParam +
			gradBufferLayers*c.LayerGradBytes() +
			activationBytes(c) + runtimeWorkspaceBytes,
		Host: shard * (BytesGrad + BytesOptState),
	}
}

// footprintInterleavedOpt: same residency as ZeRO-Offload (params on
// GPU, grads + optimizer states on CPU) plus two staging buffers for
// the GPU-side share of each layer's Adam moments — the chunks the
// interleaved schedule round-trips over PCIe while adjacent subgroups
// update on the CPU.
func footprintInterleavedOpt(c Config, _, _ int) MemoryFootprint {
	shard := c.TotalParams() / int64(c.ModelParallel)
	return MemoryFootprint{
		GPU: shard*BytesParam +
			gradBufferLayers*c.LayerGradBytes() +
			interleavedStageBuffers*c.LayerParamsShard()*BytesOptState +
			activationBytes(c) + runtimeWorkspaceBytes,
		Host: shard * (BytesGrad + BytesOptState),
	}
}

func footprintZeROInfinity(nvme bool) func(Config, int, int) MemoryFootprint {
	return func(c Config, _, _ int) MemoryFootprint {
		shard := c.TotalParams() / int64(c.ModelParallel)
		if !nvme {
			return MemoryFootprint{
				GPU: int64(float64(shard)*zeroInfinityGPUBytesPerParam) +
					activationBytes(c) + runtimeWorkspaceBytes,
				Host: int64(float64(shard) * zeroInfinityHostBytesPerParam),
			}
		}
		// NVMe mode streams fine-grained partitions straight from
		// disk through a fixed fused-buffer budget, with activation
		// checkpoints offloaded to the host — this is how it
		// reaches half-trillion scale (slowly, Fig. 1b/10).
		return MemoryFootprint{
			GPU: zeroInfinityNVMeBufferBytes +
				c.WorkingActivationBytes() + runtimeWorkspaceBytes,
			Host: 4*zeroInfinityNVMeBufferBytes +
				int64(c.Layers)*c.ActivationBytesPerLayer(),
			Disk: int64(float64(shard) * zeroInfinityHostBytesPerParam),
		}
	}
}

func footprintStronghold(nvme bool) func(Config, int, int) MemoryFootprint {
	return func(c Config, windowLayers, workers int) MemoryFootprint {
		shard := c.TotalParams() / int64(c.ModelParallel)
		if windowLayers < 1 {
			windowLayers = 1
		}
		// Window buffers hold weights+grads for m layers (+1 prefetch
		// buffer, constraint (1c)); embedding/head stay resident; every
		// worker needs its own window activations and gradients but
		// parameters are stored once (§IV-A). Activation checkpoints
		// outside the window are offloaded to host RAM with the layer
		// states — required for the paper's deepest models, whose
		// checkpoints alone exceed device memory.
		window := int64(windowLayers+1) * c.LayerParamsShard() * (BytesParam + BytesGrad)
		windowAct := int64(windowLayers+1)*c.ActivationBytesPerLayer() + c.WorkingActivationBytes()
		var f MemoryFootprint
		f.GPU = window + residentEmbeddingBytes(c) +
			int64(workers)*windowAct + runtimeWorkspaceBytes
		if workers > 1 {
			f.GPU += int64(workers-1) * int64(windowLayers) * c.LayerGradBytes()
		}
		hostAct := int64(c.Layers) * c.ActivationBytesPerLayer()
		if !nvme {
			f.Host = shard*strongholdHostBytesPerParam + hostAct
		} else {
			// NVMe tier: the host holds a pinned staging ring of a few
			// windows' worth of layer states (§III-G), not the model.
			ring := 4 * int64(max(windowLayers, 1)) * c.LayerStateBytes()
			f.Host = ring + hostAct
			f.Disk = shard * strongholdHostBytesPerParam
		}
		return f
	}
}

// footprintZeRO: ZeRO data parallelism — each GPU computes the full
// model (batch-partitioned), so activations and layer sizes are
// unsharded; ModelParallel is reused as the state-partition degree.
func footprintZeRO(stage3 bool) func(Config, int, int) MemoryFootprint {
	return func(c Config, _, _ int) MemoryFootprint {
		dp := int64(c.ModelParallel)
		full := c
		full.ModelParallel = 1
		total := full.TotalParams()
		fullAct := activationBytes(full)
		if !stage3 {
			// Full parameter replica; gradients + optimizer states
			// partitioned.
			return MemoryFootprint{GPU: total*BytesParam + total*(BytesGrad+BytesOptState)/dp +
				fullAct + runtimeWorkspaceBytes}
		}
		// Parameters partitioned too; two gathered working layers.
		return MemoryFootprint{GPU: total*BytesModelState/dp +
			2*full.LayerParams()*BytesParam +
			fullAct + runtimeWorkspaceBytes}
	}
}

// Fits reports whether the footprint fits the given capacities.
func (f MemoryFootprint) Fits(gpuBytes, hostBytes, diskBytes int64) bool {
	return f.GPU <= gpuBytes && f.Host <= hostBytes && f.Disk <= diskBytes
}

// LargestTrainable sweeps depth at the given hidden width (and batch
// size set) and returns the largest model size in billions that fits
// the capacities under method m. It mirrors the paper's Fig. 6
// methodology: grow the model until OOM. windowLayers applies to
// STRONGHOLD only.
func LargestTrainable(m Method, hidden, mp int, batchSizes []int, windowLayers int, gpuBytes, hostBytes, diskBytes int64) float64 {
	best := 0.0
	for _, bs := range batchSizes {
		lo, hi := 1, 1
		fits := func(layers int) bool {
			c := NewConfig(layers, hidden, 16)
			c.BatchSize = bs
			c.ModelParallel = mp
			return Footprint(m, c, windowLayers, 1).Fits(gpuBytes, hostBytes, diskBytes)
		}
		if !fits(1) {
			continue
		}
		for fits(hi * 2) {
			hi *= 2
			if hi > 1<<20 {
				break
			}
		}
		lo = hi
		hi *= 2
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if fits(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		c := NewConfig(lo, hidden, 16)
		c.BatchSize = bs
		c.ModelParallel = mp
		if b := c.ParamsBillion(); b > best {
			best = b
		}
	}
	return best
}
