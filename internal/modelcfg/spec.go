package modelcfg

import (
	"fmt"
	"math"
)

// ConfigSpec is the request-level model description shared by the
// public simulation API (stronghold.SimConfig) and the
// capacity-planning server (internal/serve): the handful of knobs a
// caller actually sets, with everything else defaulted to the paper's
// evaluation constants. Resolve turns it into a validated Config.
type ConfigSpec struct {
	// SizeBillions picks the layer count for a target parameter count
	// at the given hidden size (Table I's derivation). Ignored when
	// Layers is set.
	SizeBillions float64 `json:"size_billions,omitempty"`
	// Layers sets the depth directly and wins over SizeBillions.
	Layers int `json:"layers,omitempty"`
	// Hidden is the hidden width (default 2560, the §V-B sweep anchor).
	Hidden int `json:"hidden"`
	// BatchSize is the per-GPU batch size (default 4).
	BatchSize int `json:"batch_size"`
	// ModelParallel is the tensor-model-parallel degree (default 1).
	ModelParallel int `json:"model_parallel"`
}

// Canonical returns the spec with every default made explicit and the
// Layers-wins rule applied (SizeBillions zeroed when Layers is set).
// It is idempotent — Canonical(Canonical(s)) == Canonical(s) — which
// is what makes a hash of the canonical form a stable cache key.
func (s ConfigSpec) Canonical() ConfigSpec {
	if s.Hidden == 0 {
		s.Hidden = 2560
	}
	if s.BatchSize == 0 {
		s.BatchSize = 4
	}
	if s.ModelParallel == 0 {
		s.ModelParallel = 1
	}
	if s.Layers > 0 {
		s.SizeBillions = 0
	}
	return s
}

// Resolve canonicalizes the spec and builds the validated Config, with
// the paper's 16 attention heads. Negative or non-finite fields are
// rejected rather than treated as unset — the spec decodes untrusted
// request JSON.
func (s ConfigSpec) Resolve() (Config, error) {
	if s.Layers < 0 || s.Hidden < 0 || s.BatchSize < 0 || s.ModelParallel < 0 ||
		s.SizeBillions < 0 || math.IsNaN(s.SizeBillions) || math.IsInf(s.SizeBillions, 0) {
		return Config{}, fmt.Errorf("modelcfg: negative or non-finite field in config spec %+v", s)
	}
	s = s.Canonical()
	var cfg Config
	switch {
	case s.Layers > 0:
		cfg = NewConfig(s.Layers, s.Hidden, 16)
		cfg.ModelParallel = s.ModelParallel
	case s.SizeBillions > 0:
		cfg = ConfigForSize(s.SizeBillions, s.Hidden, s.ModelParallel)
	default:
		return Config{}, fmt.Errorf("modelcfg: config spec needs SizeBillions or Layers")
	}
	cfg.BatchSize = s.BatchSize
	return cfg, cfg.Validate()
}

// MethodSummary is the registry row in wire form — what /v1/methods
// serves and what client tooling introspects. Field order is the JSON
// field order, so keep it stable.
type MethodSummary struct {
	Key         string   `json:"key"`
	Display     string   `json:"display"`
	Aliases     []string `json:"aliases,omitempty"`
	Engine      string   `json:"engine"`
	PlanDriven  bool     `json:"plan_driven"`
	SingleGPU   bool     `json:"single_gpu"`
	Distributed bool     `json:"distributed"`
	NVMe        bool     `json:"nvme"`
	Decisions   struct {
		Window       bool `json:"window"`
		OptPlacement bool `json:"opt_placement"`
	} `json:"decisions"`
}

// engineName renders the EngineKind for the wire.
func engineName(k EngineKind) string {
	switch k {
	case EngineCore:
		return "core"
	case EngineCluster:
		return "cluster"
	}
	return "baseline"
}

// MethodSummaries renders the whole registry in display order.
func MethodSummaries() []MethodSummary {
	out := make([]MethodSummary, 0, len(methods))
	for _, info := range methods {
		s := MethodSummary{
			Key:         info.Key,
			Display:     info.Display,
			Aliases:     info.Aliases,
			Engine:      engineName(info.Engine),
			PlanDriven:  info.PlanDriven,
			SingleGPU:   info.SingleGPU,
			Distributed: info.Distributed,
			NVMe:        info.NVMe,
		}
		s.Decisions.Window = info.Decisions.Window
		s.Decisions.OptPlacement = info.Decisions.OptPlacement
		out = append(out, s)
	}
	return out
}
