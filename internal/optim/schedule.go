package optim

import (
	"fmt"
	"math"
)

// Schedule maps a 0-based training step to a learning rate. The
// paper's evaluation uses Megatron-LM's hyperparameters (§V-B), whose
// standard schedule is linear warmup followed by cosine decay.
type Schedule interface {
	LR(step int) float64
}

// Constant returns the same rate at every step.
type Constant struct{ Rate float64 }

// LR implements Schedule.
func (c Constant) LR(int) float64 { return c.Rate }

// WarmupCosine ramps linearly from 0 to Base over WarmupSteps, then
// decays along a half cosine to MinRate at TotalSteps (clamping there
// afterwards).
type WarmupCosine struct {
	Base        float64
	MinRate     float64
	WarmupSteps int
	TotalSteps  int
}

// Validate reports configuration errors.
func (w WarmupCosine) Validate() error {
	switch {
	case w.Base <= 0:
		return fmt.Errorf("optim: non-positive base rate %v", w.Base)
	case w.MinRate < 0 || w.MinRate > w.Base:
		return fmt.Errorf("optim: min rate %v outside [0, base]", w.MinRate)
	case w.WarmupSteps < 0 || w.TotalSteps <= w.WarmupSteps:
		return fmt.Errorf("optim: bad step counts warmup=%d total=%d", w.WarmupSteps, w.TotalSteps)
	}
	return nil
}

// LR implements Schedule.
func (w WarmupCosine) LR(step int) float64 {
	if step < 0 {
		step = 0
	}
	if w.WarmupSteps > 0 && step < w.WarmupSteps {
		return w.Base * float64(step+1) / float64(w.WarmupSteps)
	}
	if step >= w.TotalSteps {
		return w.MinRate
	}
	progress := float64(step-w.WarmupSteps) / float64(w.TotalSteps-w.WarmupSteps)
	return w.MinRate + (w.Base-w.MinRate)*0.5*(1+math.Cos(math.Pi*progress))
}

// WarmupLinear ramps up over WarmupSteps then decays linearly to
// MinRate at TotalSteps.
type WarmupLinear struct {
	Base        float64
	MinRate     float64
	WarmupSteps int
	TotalSteps  int
}

// LR implements Schedule.
func (w WarmupLinear) LR(step int) float64 {
	if step < 0 {
		step = 0
	}
	if w.WarmupSteps > 0 && step < w.WarmupSteps {
		return w.Base * float64(step+1) / float64(w.WarmupSteps)
	}
	if step >= w.TotalSteps {
		return w.MinRate
	}
	progress := float64(step-w.WarmupSteps) / float64(w.TotalSteps-w.WarmupSteps)
	return w.Base + (w.MinRate-w.Base)*progress
}

// SetLR changes the optimizer's learning rate (applied to subsequent
// Step/StepParam calls) — how a schedule drives Adam.
func (a *Adam) SetLR(lr float64) { a.Config.LR = float32(lr) }

// SetLR changes SGD's learning rate.
func (s *SGD) SetLR(lr float64) { s.LR = float32(lr) }
