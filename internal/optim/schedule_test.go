package optim

import (
	"math"
	"testing"
	"testing/quick"

	"stronghold/internal/autograd"
	"stronghold/internal/tensor"
)

func TestConstantSchedule(t *testing.T) {
	c := Constant{Rate: 0.01}
	if c.LR(0) != 0.01 || c.LR(1_000_000) != 0.01 {
		t.Fatal("constant schedule must not vary")
	}
}

func TestWarmupCosineShape(t *testing.T) {
	s := WarmupCosine{Base: 1, MinRate: 0.1, WarmupSteps: 10, TotalSteps: 110}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Warmup is increasing and reaches Base.
	for i := 1; i < 10; i++ {
		if s.LR(i) <= s.LR(i-1) {
			t.Fatalf("warmup not increasing at %d", i)
		}
	}
	if s.LR(9) != 1 {
		t.Fatalf("end of warmup %v, want base", s.LR(9))
	}
	// Decay is decreasing.
	for i := 11; i < 110; i++ {
		if s.LR(i) >= s.LR(i-1) {
			t.Fatalf("decay not decreasing at %d", i)
		}
	}
	// Midpoint of the cosine is the average of base and min.
	mid := s.LR(60)
	if math.Abs(mid-0.55) > 0.01 {
		t.Fatalf("midpoint %v, want ~0.55", mid)
	}
	// Clamps at MinRate.
	if s.LR(110) != 0.1 || s.LR(10_000) != 0.1 {
		t.Fatal("must clamp at MinRate")
	}
	if s.LR(-5) != s.LR(0) {
		t.Fatal("negative steps clamp to 0")
	}
}

func TestWarmupCosineValidate(t *testing.T) {
	bad := []WarmupCosine{
		{Base: 0, TotalSteps: 10},
		{Base: 1, MinRate: 2, TotalSteps: 10},
		{Base: 1, WarmupSteps: 10, TotalSteps: 10},
		{Base: 1, WarmupSteps: -1, TotalSteps: 10},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestWarmupLinearShape(t *testing.T) {
	s := WarmupLinear{Base: 1, MinRate: 0, WarmupSteps: 5, TotalSteps: 105}
	if s.LR(4) != 1 {
		t.Fatalf("end of warmup %v", s.LR(4))
	}
	mid := s.LR(55)
	if math.Abs(mid-0.5) > 0.01 {
		t.Fatalf("linear midpoint %v, want 0.5", mid)
	}
	if s.LR(105) != 0 || s.LR(-1) != s.LR(0) {
		t.Fatal("clamping wrong")
	}
}

func TestSetLRDrivesAdam(t *testing.T) {
	p := autograd.NewParameter("w", tensor.Zeros(1))
	p.Grad.CopyFrom(tensor.Full(1, 1))
	a := NewAdam([]*autograd.Parameter{p}, DefaultAdamConfig())
	a.SetLR(0.5)
	a.Step()
	// First bias-corrected Adam step ≈ LR.
	if got := float64(p.Value.Data()[0]); math.Abs(got+0.5) > 1e-3 {
		t.Fatalf("step %v, want ≈ -0.5", got)
	}
	s := NewSGD([]*autograd.Parameter{p}, 1, 0)
	s.SetLR(0.25)
	if s.LR != 0.25 {
		t.Fatal("SGD SetLR")
	}
}

// Property: both schedules stay within [MinRate, Base] after warmup and
// within [0, Base] always.
func TestPropertyScheduleBounds(t *testing.T) {
	f := func(stepRaw uint16) bool {
		step := int(stepRaw)
		c := WarmupCosine{Base: 1, MinRate: 0.05, WarmupSteps: 100, TotalSteps: 1000}
		l := WarmupLinear{Base: 1, MinRate: 0.05, WarmupSteps: 100, TotalSteps: 1000}
		for _, lr := range []float64{c.LR(step), l.LR(step)} {
			if lr < 0 || lr > 1+1e-12 {
				return false
			}
			if step >= 100 && lr < 0.05-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
