package optim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"stronghold/internal/autograd"
	"stronghold/internal/tensor"
)

func makeParams(n, size int, seed uint64) []*autograd.Parameter {
	rng := tensor.NewRNG(seed)
	ps := make([]*autograd.Parameter, n)
	for i := range ps {
		ps[i] = autograd.NewParameter("p", tensor.Randn(rng, 1, size))
		ps[i].Grad.CopyFrom(tensor.Randn(rng, 1, size))
	}
	return ps
}

func TestSGDStepDirection(t *testing.T) {
	p := autograd.NewParameter("w", tensor.Full(1, 3))
	p.Grad.CopyFrom(tensor.FromSlice([]float32{1, -1, 0}, 3))
	s := NewSGD([]*autograd.Parameter{p}, 0.1, 0)
	s.Step()
	want := []float32{0.9, 1.1, 1}
	for i, w := range want {
		if p.Value.Data()[i] != w {
			t.Fatalf("SGD step got %v, want %v", p.Value.Data(), want)
		}
	}
	if s.StateBytes() != 0 {
		t.Fatal("momentum-free SGD must have no state")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := autograd.NewParameter("w", tensor.Full(0, 1))
	p.Grad.CopyFrom(tensor.Full(1, 1))
	s := NewSGD([]*autograd.Parameter{p}, 1, 0.9)
	s.Step() // v=1, w=-1
	s.Step() // v=1.9, w=-2.9
	if got := p.Value.Data()[0]; math.Abs(float64(got)+2.9) > 1e-6 {
		t.Fatalf("momentum step got %v, want -2.9", got)
	}
	if s.StateBytes() != 4 {
		t.Fatalf("StateBytes = %d, want 4", s.StateBytes())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² elementwise; Adam should approach 3.
	p := autograd.NewParameter("w", tensor.Zeros(4))
	a := NewAdam([]*autograd.Parameter{p}, AdamConfig{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
	for iter := 0; iter < 500; iter++ {
		for j := range p.Grad.Data() {
			p.Grad.Data()[j] = 2 * (p.Value.Data()[j] - 3)
		}
		a.Step()
	}
	for _, w := range p.Value.Data() {
		if math.Abs(float64(w)-3) > 0.05 {
			t.Fatalf("Adam did not converge: %v", p.Value.Data())
		}
	}
}

func TestAdamFirstStepSize(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ≈ LR.
	p := autograd.NewParameter("w", tensor.Zeros(1))
	p.Grad.CopyFrom(tensor.Full(0.5, 1))
	a := NewAdam([]*autograd.Parameter{p}, AdamConfig{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
	a.Step()
	if got := float64(p.Value.Data()[0]); math.Abs(got+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ≈ -0.01", got)
	}
}

func TestAdamWWeightDecayShrinksWeights(t *testing.T) {
	p := autograd.NewParameter("w", tensor.Full(10, 1))
	p.Grad.CopyFrom(tensor.Zeros(1)) // no gradient signal
	a := NewAdam([]*autograd.Parameter{p}, AdamConfig{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.1})
	for i := 0; i < 10; i++ {
		a.Step()
	}
	if got := p.Value.Data()[0]; got >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", got)
	}
}

func TestAdamStateBytesIs8PerParam(t *testing.T) {
	// The 8 bytes/param (two FP32 moments) is the constant the paper's
	// memory models rely on.
	ps := makeParams(3, 100, 1)
	a := NewAdam(ps, DefaultAdamConfig())
	if a.StateBytes() != 3*100*8 {
		t.Fatalf("StateBytes = %d, want %d", a.StateBytes(), 3*100*8)
	}
}

func TestStepParamIndependence(t *testing.T) {
	// Updating parameters one at a time in any order must equal Step().
	mk := func() (*Adam, []*autograd.Parameter) {
		ps := makeParams(4, 16, 2)
		return NewAdam(ps, DefaultAdamConfig()), ps
	}
	aAll, psAll := mk()
	aAll.Step()

	aPer, psPer := mk()
	for _, i := range []int{2, 0, 3, 1} {
		aPer.StepParam(i)
	}
	for i := range psAll {
		if !psAll[i].Value.Equal(psPer[i].Value) {
			t.Fatalf("param %d differs between Step and permuted StepParam", i)
		}
	}
}

func TestStepParamConcurrentMatchesSequential(t *testing.T) {
	// The STRONGHOLD optimizer pool's core assumption: concurrent
	// StepParam on disjoint indices is equivalent to sequential Step.
	aSeq, psSeq := NewAdam(makeParams(8, 64, 3), DefaultAdamConfig()), []*autograd.Parameter(nil)
	psSeq = aSeq.Params()
	aSeq.Step()

	aCon := NewAdam(makeParams(8, 64, 3), DefaultAdamConfig())
	var wg sync.WaitGroup
	for i := range aCon.Params() {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			aCon.StepParam(i)
		}(i)
	}
	wg.Wait()
	for i := range psSeq {
		if !psSeq[i].Value.Equal(aCon.Params()[i].Value) {
			t.Fatalf("param %d differs between sequential and concurrent updates", i)
		}
	}
}

func TestCloneAndRestoreState(t *testing.T) {
	ps := makeParams(1, 8, 4)
	a := NewAdam(ps, DefaultAdamConfig())
	a.Step()
	m := make([]float32, 8)
	v := make([]float32, 8)
	if err := a.CloneStateInto(0, m, v); err != nil {
		t.Fatal(err)
	}
	// Wipe and restore.
	a2 := NewAdam(ps, DefaultAdamConfig())
	if err := a2.RestoreState(0, m, v); err != nil {
		t.Fatal(err)
	}
	m2 := make([]float32, 8)
	v2 := make([]float32, 8)
	if err := a2.CloneStateInto(0, m2, v2); err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i] != m2[i] || v[i] != v2[i] {
			t.Fatal("state restore mismatch")
		}
	}
	if err := a.CloneStateInto(0, make([]float32, 3), v); err == nil {
		t.Fatal("size mismatch must error")
	}
	if err := a.RestoreState(0, make([]float32, 3), v); err == nil {
		t.Fatal("size mismatch must error")
	}
}

// Property: one Adam step never moves a weight by more than
// LR·(1+ε-margin) once bias-corrected — the bounded-update property.
func TestPropertyAdamBoundedStep(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := autograd.NewParameter("w", tensor.Randn(rng, 1, 16))
		before := p.Value.Clone()
		p.Grad.CopyFrom(tensor.Randn(rng, 10, 16))
		a := NewAdam([]*autograd.Parameter{p}, AdamConfig{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
		a.Step()
		for j := range before.Data() {
			if math.Abs(float64(p.Value.Data()[j]-before.Data()[j])) > 0.0101 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SGD with lr=0 is the identity.
func TestPropertySGDZeroLRIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := autograd.NewParameter("w", tensor.Randn(rng, 1, 8))
		before := p.Value.Clone()
		p.Grad.CopyFrom(tensor.Randn(rng, 1, 8))
		NewSGD([]*autograd.Parameter{p}, 0, 0.9).Step()
		return p.Value.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
