// Package optim implements the optimizers the paper trains with — Adam
// (the memory-dominating case the offloading work targets), AdamW and
// SGD — behind a per-parameter Step interface so the STRONGHOLD
// concurrent CPU optimizer pool can update disjoint layers in parallel.
package optim

import (
	"fmt"
	"math"

	"stronghold/internal/autograd"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients. Implementations keep per-parameter state (e.g. Adam
// moments); StateBytes reports that state's footprint, which is what
// ZeRO-Offload/STRONGHOLD move off the GPU.
type Optimizer interface {
	// Step applies one update to every managed parameter.
	Step()
	// StepParam applies one update to the i-th managed parameter only.
	// The STRONGHOLD optimizer pool uses this to update layers
	// concurrently from different workers.
	StepParam(i int)
	// Params returns the managed parameters.
	Params() []*autograd.Parameter
	// StateBytes returns the optimizer-state footprint in bytes.
	StateBytes() int64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	params   []*autograd.Parameter
	velocity [][]float32
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*autograd.Parameter, lr, momentum float32) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	if momentum != 0 {
		s.velocity = make([][]float32, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float32, p.Value.Size())
		}
	}
	return s
}

// Params implements Optimizer.
func (s *SGD) Params() []*autograd.Parameter { return s.params }

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int64 {
	var n int64
	for _, v := range s.velocity {
		n += int64(len(v)) * 4
	}
	return n
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i := range s.params {
		s.StepParam(i)
	}
}

// StepParam implements Optimizer.
func (s *SGD) StepParam(i int) {
	p := s.params[i]
	w, g := p.Value.Data(), p.Grad.Data()
	if s.velocity == nil {
		for j := range w {
			w[j] -= s.LR * g[j]
		}
		return
	}
	v := s.velocity[i]
	for j := range w {
		v[j] = s.Momentum*v[j] + g[j]
		w[j] -= s.LR * v[j]
	}
}

// AdamConfig holds Adam/AdamW hyperparameters. Defaults (Zero values
// replaced by DefaultAdamConfig) follow the paper's references [22],
// [11].
type AdamConfig struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32 // decoupled (AdamW) when nonzero
}

// DefaultAdamConfig returns the standard Adam hyperparameters.
func DefaultAdamConfig() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Adam implements Adam/AdamW. Its two moment buffers are the "optimizer
// states" of the paper: 8 bytes per parameter in FP32, which together
// with parameter+gradient makes the 16 bytes/param model-state total
// used in all memory-capacity experiments.
type Adam struct {
	Config AdamConfig
	params []*autograd.Parameter
	m, v   [][]float32
	step   []int // per-parameter step count, so StepParam stays independent
}

// NewAdam builds an Adam optimizer over params.
func NewAdam(params []*autograd.Parameter, cfg AdamConfig) *Adam {
	a := &Adam{Config: cfg, params: params}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	a.step = make([]int, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, p.Value.Size())
		a.v[i] = make([]float32, p.Value.Size())
	}
	return a
}

// Params implements Optimizer.
func (a *Adam) Params() []*autograd.Parameter { return a.params }

// StateBytes implements Optimizer.
func (a *Adam) StateBytes() int64 {
	var n int64
	for i := range a.m {
		n += int64(len(a.m[i])+len(a.v[i])) * 4
	}
	return n
}

// Step implements Optimizer.
func (a *Adam) Step() {
	for i := range a.params {
		a.StepParam(i)
	}
}

// StepParam implements Optimizer. It is safe to call concurrently for
// *different* i from different goroutines: all touched state is indexed
// by i.
func (a *Adam) StepParam(i int) {
	a.stepParam(i, a.Config)
}

// StepParamLR updates one parameter with an explicit learning rate —
// how LR schedules drive asynchronous per-layer updates without racing
// on the shared config.
func (a *Adam) StepParamLR(i int, lr float32) {
	c := a.Config
	c.LR = lr
	a.stepParam(i, c)
}

func (a *Adam) stepParam(i int, c AdamConfig) {
	p := a.params[i]
	a.step[i]++
	t := a.step[i]
	bc1 := 1 - float32(math.Pow(float64(c.Beta1), float64(t)))
	bc2 := 1 - float32(math.Pow(float64(c.Beta2), float64(t)))
	w, g, m, v := p.Value.Data(), p.Grad.Data(), a.m[i], a.v[i]
	for j := range w {
		gj := g[j]
		m[j] = c.Beta1*m[j] + (1-c.Beta1)*gj
		v[j] = c.Beta2*v[j] + (1-c.Beta2)*gj*gj
		mhat := m[j] / bc1
		vhat := v[j] / bc2
		upd := c.LR * mhat / (float32(math.Sqrt(float64(vhat))) + c.Eps)
		if c.WeightDecay != 0 {
			upd += c.LR * c.WeightDecay * w[j]
		}
		w[j] -= upd
	}
}

// CloneStateInto copies the i-th parameter's moment buffers into dst
// slices (used by the NVMe tier to spill optimizer state). dst slices
// must have the right length.
func (a *Adam) CloneStateInto(i int, dstM, dstV []float32) error {
	if len(dstM) != len(a.m[i]) || len(dstV) != len(a.v[i]) {
		return fmt.Errorf("optim: state clone size mismatch for param %d", i)
	}
	copy(dstM, a.m[i])
	copy(dstV, a.v[i])
	return nil
}

// RestoreState loads moment buffers for the i-th parameter (inverse of
// CloneStateInto).
func (a *Adam) RestoreState(i int, srcM, srcV []float32) error {
	if len(srcM) != len(a.m[i]) || len(srcV) != len(a.v[i]) {
		return fmt.Errorf("optim: state restore size mismatch for param %d", i)
	}
	copy(a.m[i], srcM)
	copy(a.v[i], srcV)
	return nil
}
