package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64)
// used for reproducible parameter initialization and synthetic data.
// It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Randn returns a tensor of the given shape with N(0, std²) entries.
func Randn(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// Uniform returns a tensor with entries uniform in [lo, hi).
func Uniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.Float64())
	}
	return t
}
