package tensor

import (
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation tests compare against.
func naiveMatMul(a, b *Tensor) *Tensor {
	k := a.Dim(-1)
	m := a.Size() / k
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data()[i*k+p] * b.Data()[p*n+j]
			}
			out.Data()[i*n+j] = s
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("MatMul got %v, want %v", got.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(11)
	a := Randn(r, 1, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !MatMul(a, eye).AllClose(a, 1e-6, 1e-6) {
		t.Fatal("A @ I must equal A")
	}
}

func TestMatMulMatchesNaiveLarge(t *testing.T) {
	// Large enough to trigger the parallel path.
	r := NewRNG(5)
	a := Randn(r, 1, 96, 70)
	b := Randn(r, 1, 70, 85)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !got.AllClose(want, 1e-4, 1e-4) {
		t.Fatal("parallel MatMul disagrees with naive reference")
	}
}

func TestMatMulBatchedLeadingDims(t *testing.T) {
	r := NewRNG(6)
	a := Randn(r, 1, 2, 3, 4) // flattened rows = 6
	b := Randn(r, 1, 4, 5)
	got := MatMul(a, b)
	if got.Dim(0) != 2 || got.Dim(1) != 3 || got.Dim(2) != 5 {
		t.Fatalf("output shape %v", got.Shape())
	}
	want := naiveMatMul(a.Reshape(6, 4), b)
	if !got.Reshape(6, 5).AllClose(want, 1e-5, 1e-5) {
		t.Fatal("batched leading dims wrong")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransB(t *testing.T) {
	r := NewRNG(8)
	a := Randn(r, 1, 7, 5)
	b := Randn(r, 1, 9, 5)
	got := MatMulTransB(a, b)
	want := naiveMatMul(a, Transpose2D(b))
	if !got.AllClose(want, 1e-4, 1e-4) {
		t.Fatal("MatMulTransB disagrees with naive A @ B^T")
	}
}

func TestMatMulTransA(t *testing.T) {
	r := NewRNG(9)
	a := Randn(r, 1, 7, 5)
	b := Randn(r, 1, 7, 6)
	got := MatMulTransA(a, b)
	want := naiveMatMul(Transpose2D(a), b)
	if !got.AllClose(want, 1e-4, 1e-4) {
		t.Fatal("MatMulTransA disagrees with naive A^T @ B")
	}
}

func TestBatchedMatMul(t *testing.T) {
	r := NewRNG(10)
	a := Randn(r, 1, 3, 4, 5)
	b := Randn(r, 1, 3, 5, 6)
	got := BatchedMatMul(a, b)
	for bi := 0; bi < 3; bi++ {
		ab := FromSlice(a.Data()[bi*20:(bi+1)*20], 4, 5)
		bb := FromSlice(b.Data()[bi*30:(bi+1)*30], 5, 6)
		want := naiveMatMul(ab, bb)
		gb := FromSlice(got.Data()[bi*24:(bi+1)*24], 4, 6)
		if !gb.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("batch %d disagrees", bi)
		}
	}
}

func TestBatchedMatMulTransB(t *testing.T) {
	r := NewRNG(12)
	a := Randn(r, 1, 2, 4, 5)
	b := Randn(r, 1, 2, 6, 5)
	got := BatchedMatMulTransB(a, b)
	for bi := 0; bi < 2; bi++ {
		ab := FromSlice(a.Data()[bi*20:(bi+1)*20], 4, 5)
		bb := FromSlice(b.Data()[bi*30:(bi+1)*30], 6, 5)
		want := naiveMatMul(ab, Transpose2D(bb))
		gb := FromSlice(got.Data()[bi*24:(bi+1)*24], 4, 6)
		if !gb.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("batch %d disagrees", bi)
		}
	}
}

func TestBatchedMatMulTransA(t *testing.T) {
	r := NewRNG(13)
	a := Randn(r, 1, 2, 7, 4)
	b := Randn(r, 1, 2, 7, 3)
	got := BatchedMatMulTransA(a, b)
	for bi := 0; bi < 2; bi++ {
		ab := FromSlice(a.Data()[bi*28:(bi+1)*28], 7, 4)
		bb := FromSlice(b.Data()[bi*21:(bi+1)*21], 7, 3)
		want := naiveMatMul(Transpose2D(ab), bb)
		gb := FromSlice(got.Data()[bi*12:(bi+1)*12], 4, 3)
		if !gb.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("batch %d disagrees", bi)
		}
	}
}

// Property: (A@B)@C == A@(B@C) within float tolerance.
func TestPropertyMatMulAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := Randn(r, 0.5, 4, 5)
		b := Randn(r, 0.5, 5, 6)
		c := Randn(r, 0.5, 6, 3)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return lhs.AllClose(rhs, 1e-3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose kernels agree with explicit Transpose2D+MatMul.
func TestPropertyTransKernelsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := Randn(r, 1, 6, 4)
		b := Randn(r, 1, 6, 5)
		viaKernel := MatMulTransA(a, b)
		viaExplicit := MatMul(Transpose2D(a), b)
		return viaKernel.AllClose(viaExplicit, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Randn(NewRNG(42), 1, 16)
	b := Randn(NewRNG(42), 1, 16)
	if !a.Equal(b) {
		t.Fatal("same seed must produce identical tensors")
	}
	c := Randn(NewRNG(43), 1, 16)
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(2)
	u := Uniform(r, -2, 3, 1000)
	for _, v := range u.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform value %v out of range", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := NewRNG(1)
	x := Randn(r, 1, 256, 256)
	y := Randn(r, 1, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
