package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // largest finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Errorf("Float32ToHalf(%v) = %#x, want %#x", c.f, got, c.h)
		}
		if got := HalfToFloat32(c.h); got != c.f {
			t.Errorf("HalfToFloat32(%#x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if got := Float32ToHalf(1e6); got != 0x7c00 {
		t.Fatalf("1e6 should overflow to +Inf, got %#x", got)
	}
	if got := Float32ToHalf(-1e6); got != 0xfc00 {
		t.Fatalf("-1e6 should overflow to -Inf, got %#x", got)
	}
}

func TestHalfNaN(t *testing.T) {
	h := Float32ToHalf(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN encoding %#x", h)
	}
	if !math.IsNaN(float64(HalfToFloat32(h))) {
		t.Fatal("NaN must round-trip as NaN")
	}
}

func TestHalfSubnormals(t *testing.T) {
	// Smallest positive half subnormal is 2^-24.
	tiny := float32(math.Ldexp(1, -24))
	h := Float32ToHalf(tiny)
	if h != 0x0001 {
		t.Fatalf("2^-24 = %#x, want 0x0001", h)
	}
	if got := HalfToFloat32(0x0001); got != tiny {
		t.Fatalf("subnormal round trip %v, want %v", got, tiny)
	}
	// Below half the smallest subnormal: flush to zero.
	if got := Float32ToHalf(float32(math.Ldexp(1, -26))); got != 0 {
		t.Fatalf("2^-26 should flush to zero, got %#x", got)
	}
}

// Property: half-representable values round-trip exactly.
func TestPropertyHalfRoundTripExact(t *testing.T) {
	f := func(h uint16) bool {
		// Skip NaN payload comparisons.
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			return true
		}
		return Float32ToHalf(HalfToFloat32(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization error is bounded by 2^-11 relative for normal
// values.
func TestPropertyHalfRelativeError(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		v := float32(rng.NormFloat64())
		if v == 0 {
			return true
		}
		back := HalfToFloat32(Float32ToHalf(v))
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		return rel <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestToHalfFromHalfTensor(t *testing.T) {
	rng := NewRNG(50)
	x := Randn(rng, 1, 64)
	hs := ToHalf(x)
	y := New(64)
	FromHalf(y, hs)
	if !y.AllClose(x, 1e-3, 1e-4) {
		t.Fatal("tensor half round trip too lossy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromHalf(New(3), hs)
}
