package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. b may also be broadcast when it is a
// row vector matching a's last dimension (the bias-add pattern).
func Add(a, b *Tensor) *Tensor {
	return broadcastBinary(a, b, func(x, y float32) float32 { return x + y })
}

// Sub returns a - b elementwise (with row-vector broadcasting as Add).
func Sub(a, b *Tensor) *Tensor {
	return broadcastBinary(a, b, func(x, y float32) float32 { return x - y })
}

// Mul returns a * b elementwise (with row-vector broadcasting as Add).
func Mul(a, b *Tensor) *Tensor {
	return broadcastBinary(a, b, func(x, y float32) float32 { return x * y })
}

// Div returns a / b elementwise (with row-vector broadcasting as Add).
func Div(a, b *Tensor) *Tensor {
	return broadcastBinary(a, b, func(x, y float32) float32 { return x / y })
}

// broadcastBinary applies f elementwise. Supported broadcast forms:
// identical shapes, or b a 1-D tensor equal to a's last dimension, or b
// a scalar (size 1).
func broadcastBinary(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	out := New(a.shape...)
	switch {
	case a.SameShape(b):
		for i := range a.data {
			out.data[i] = f(a.data[i], b.data[i])
		}
	case b.Size() == 1:
		y := b.data[0]
		for i := range a.data {
			out.data[i] = f(a.data[i], y)
		}
	case b.Rank() == 1 && b.Dim(0) == a.Dim(-1):
		n := b.Dim(0)
		for i := range a.data {
			out.data[i] = f(a.data[i], b.data[i%n])
		}
	default:
		panic(fmt.Sprintf("tensor: cannot broadcast %v with %v", a.shape, b.shape))
	}
	return out
}

// AddScaled computes t += alpha*o in place. Shapes must match in size.
func (t *Tensor) AddScaled(alpha float32, o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: AddScaled size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i := range t.data {
		t.data[i] += alpha * o.data[i]
	}
}

// Scale returns alpha*t as a new tensor.
func Scale(alpha float32, t *Tensor) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = alpha * v
	}
	return out
}

// ScaleInPlace multiplies every element of t by alpha.
func (t *Tensor) ScaleInPlace(alpha float32) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Apply returns f mapped over t.
func Apply(t *Tensor, f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// MaxAbs returns the maximum absolute element value.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// SumRows reduces a [rows, cols] view of t (flattening all leading
// dimensions into rows, keeping the last dimension as cols) into a
// 1-D tensor of length cols. This is the bias-gradient reduction.
func SumRows(t *Tensor) *Tensor {
	cols := t.Dim(-1)
	rows := t.Size() / cols
	out := New(cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			out.data[c] += t.data[base+c]
		}
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D on rank-%d tensor", t.Rank()))
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j*r+i] = v
		}
	}
	return out
}

// Softmax computes a numerically stable softmax along the last
// dimension.
func Softmax(t *Tensor) *Tensor {
	cols := t.Dim(-1)
	rows := t.Size() / cols
	out := New(t.shape...)
	for r := 0; r < rows; r++ {
		in := t.data[r*cols : (r+1)*cols]
		o := out.data[r*cols : (r+1)*cols]
		maxv := in[0]
		for _, v := range in[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range in {
			e := float32(math.Exp(float64(v - maxv)))
			o[i] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for i := range o {
			o[i] *= inv
		}
	}
	return out
}

// SoftmaxBackward computes the gradient of a softmax given its output y
// and upstream gradient dy: dx = y * (dy - sum(dy*y)) rowwise.
func SoftmaxBackward(y, dy *Tensor) *Tensor {
	cols := y.Dim(-1)
	rows := y.Size() / cols
	out := New(y.shape...)
	for r := 0; r < rows; r++ {
		yr := y.data[r*cols : (r+1)*cols]
		dyr := dy.data[r*cols : (r+1)*cols]
		o := out.data[r*cols : (r+1)*cols]
		var dot float64
		for i := range yr {
			dot += float64(yr[i]) * float64(dyr[i])
		}
		d := float32(dot)
		for i := range yr {
			o[i] = yr[i] * (dyr[i] - d)
		}
	}
	return out
}

// GELU applies the tanh-approximated Gaussian error linear unit used by
// GPT-style models.
func GELU(t *Tensor) *Tensor {
	return Apply(t, geluScalar)
}

func geluScalar(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
}

// GELUBackward returns the derivative of GELU evaluated at x, times dy.
func GELUBackward(x, dy *Tensor) *Tensor {
	if x.Size() != dy.Size() {
		panic("tensor: GELUBackward size mismatch")
	}
	out := New(x.shape...)
	const c = 0.7978845608028654
	for i, v := range x.data {
		x64 := float64(v)
		inner := c * (x64 + 0.044715*x64*x64*x64)
		th := math.Tanh(inner)
		sech2 := 1 - th*th
		dinner := c * (1 + 3*0.044715*x64*x64)
		d := 0.5*(1+th) + 0.5*x64*sech2*dinner
		out.data[i] = dy.data[i] * float32(d)
	}
	return out
}

// ReLU applies max(0, x).
func ReLU(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Tanh applies the hyperbolic tangent.
func Tanh(t *Tensor) *Tensor {
	return Apply(t, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// LayerNorm normalizes the last dimension of x to zero mean / unit
// variance and applies the affine transform gamma*xhat + beta. It
// returns the output plus the cached per-row mean and inverse standard
// deviation needed by LayerNormBackward.
func LayerNorm(x, gamma, beta *Tensor, eps float32) (out, mean, invStd *Tensor) {
	cols := x.Dim(-1)
	if gamma.Size() != cols || beta.Size() != cols {
		panic("tensor: LayerNorm affine parameter size mismatch")
	}
	rows := x.Size() / cols
	out = New(x.shape...)
	mean = New(rows)
	invStd = New(rows)
	for r := 0; r < rows; r++ {
		in := x.data[r*cols : (r+1)*cols]
		var m float64
		for _, v := range in {
			m += float64(v)
		}
		m /= float64(cols)
		var varsum float64
		for _, v := range in {
			d := float64(v) - m
			varsum += d * d
		}
		istd := 1 / math.Sqrt(varsum/float64(cols)+float64(eps))
		mean.data[r] = float32(m)
		invStd.data[r] = float32(istd)
		o := out.data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			xhat := (float64(in[c]) - m) * istd
			o[c] = float32(xhat)*gamma.data[c] + beta.data[c]
		}
	}
	return out, mean, invStd
}

// LayerNormBackward computes gradients for LayerNorm. dy is the upstream
// gradient; x, mean and invStd are the forward inputs/caches. It returns
// (dx, dgamma, dbeta).
func LayerNormBackward(x, gamma, mean, invStd, dy *Tensor) (dx, dgamma, dbeta *Tensor) {
	cols := x.Dim(-1)
	rows := x.Size() / cols
	dx = New(x.shape...)
	dgamma = New(cols)
	dbeta = New(cols)
	for r := 0; r < rows; r++ {
		in := x.data[r*cols : (r+1)*cols]
		dyr := dy.data[r*cols : (r+1)*cols]
		dxr := dx.data[r*cols : (r+1)*cols]
		m := float64(mean.data[r])
		istd := float64(invStd.data[r])
		// Accumulate the two row sums needed by the closed-form dx.
		var sumDxhat, sumDxhatXhat float64
		for c := 0; c < cols; c++ {
			xhat := (float64(in[c]) - m) * istd
			dxhat := float64(dyr[c]) * float64(gamma.data[c])
			sumDxhat += dxhat
			sumDxhatXhat += dxhat * xhat
			dgamma.data[c] += float32(float64(dyr[c]) * xhat)
			dbeta.data[c] += dyr[c]
		}
		n := float64(cols)
		for c := 0; c < cols; c++ {
			xhat := (float64(in[c]) - m) * istd
			dxhat := float64(dyr[c]) * float64(gamma.data[c])
			dxr[c] = float32(istd / n * (n*dxhat - sumDxhat - xhat*sumDxhatXhat))
		}
	}
	return dx, dgamma, dbeta
}
