package tensor

import "math"

// IEEE-754 binary16 conversion, used by the compressed-offloading
// extension: evicted layer states can be stored in half precision,
// halving CPU-side footprint at the cost of quantization error (the
// compression/accuracy trade-off the paper contrasts offloading
// against, §II/§VII).

// Float32ToHalf converts f to the nearest binary16 value
// (round-to-nearest-even), returning its bit pattern.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or inf/nan
		if bits&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // ±Inf
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign // underflow to ±0
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // carries propagate correctly into the exponent
		}
		return half
	}
}

// HalfToFloat32 expands a binary16 bit pattern to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13) // inf/nan
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// ToHalf quantizes t into a half-precision buffer.
func ToHalf(t *Tensor) []uint16 {
	out := make([]uint16, t.Size())
	for i, v := range t.Data() {
		out[i] = Float32ToHalf(v)
	}
	return out
}

// FromHalf expands a half-precision buffer into t (sizes must match).
func FromHalf(t *Tensor, hs []uint16) {
	if len(hs) != t.Size() {
		panic("tensor: FromHalf size mismatch")
	}
	for i, h := range hs {
		t.Data()[i] = HalfToFloat32(h)
	}
}
