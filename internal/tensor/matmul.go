package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the number of output elements above which
// MatMul fans out across goroutines. Small products are cheaper on one
// core.
const matmulParallelThreshold = 64 * 64

// blockK is the k-dimension blocking factor for cache locality.
const blockK = 128

// MatMul computes the matrix product of a [m,k] and b [k,n], returning
// a [m,n] tensor. Batched inputs are supported: if a has rank > 2 its
// leading dimensions are flattened into rows. The kernel is blocked over
// k and parallelized over row stripes.
func MatMul(a, b *Tensor) *Tensor {
	if b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul rhs must be rank 2, got %v", b.shape))
	}
	k := a.Dim(-1)
	if k != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	m := a.Size() / k
	n := b.Dim(1)
	outShape := append(append([]int(nil), a.shape[:len(a.shape)-1]...), n)
	out := New(outShape...)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulTransB computes a @ b^T where a is [m,k] (leading dims
// flattened) and b is [n,k]. This is the backward-by-input kernel.
func MatMulTransB(a, b *Tensor) *Tensor {
	if b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB rhs must be rank 2, got %v", b.shape))
	}
	k := a.Dim(-1)
	if k != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v^T", a.shape, b.shape))
	}
	m := a.Size() / k
	n := b.Dim(0)
	outShape := append(append([]int(nil), a.shape[:len(a.shape)-1]...), n)
	out := New(outShape...)
	parallelRows(m, n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.data[i*k : (i+1)*k]
			oi := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.data[j*k : (j+1)*k]
				var s float32
				for p := range ai {
					s += ai[p] * bj[p]
				}
				oi[j] = s
			}
		}
	})
	return out
}

// MatMulTransA computes a^T @ b where a is [m,k] and b is [m,n],
// yielding [k,n]. This is the backward-by-weight kernel.
func MatMulTransA(a, b *Tensor) *Tensor {
	k := a.Dim(-1)
	m := a.Size() / k
	n := b.Dim(-1)
	if b.Size()/n != m {
		panic(fmt.Sprintf("tensor: MatMulTransA row mismatch %v^T x %v", a.shape, b.shape))
	}
	out := New(k, n)
	// Parallelize over stripes of the k output rows; each stripe scans
	// all m input rows but writes a disjoint region, so no locking.
	parallelRows(k, n, func(k0, k1 int) {
		for i := 0; i < m; i++ {
			ai := a.data[i*k : (i+1)*k]
			bi := b.data[i*n : (i+1)*n]
			for kk := k0; kk < k1; kk++ {
				av := ai[kk]
				if av == 0 {
					continue
				}
				oi := out.data[kk*n : (kk+1)*n]
				for j := range bi {
					oi[j] += av * bi[j]
				}
			}
		}
	})
	return out
}

// matmulInto computes out += a@b with out pre-zeroed, using k-blocking
// and row-stripe parallelism.
func matmulInto(out, a, b []float32, m, k, n int) {
	parallelRows(m, n, func(r0, r1 int) {
		for kb := 0; kb < k; kb += blockK {
			kEnd := min(kb+blockK, k)
			for i := r0; i < r1; i++ {
				ai := a[i*k : (i+1)*k]
				oi := out[i*n : (i+1)*n]
				for p := kb; p < kEnd; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b[p*n : (p+1)*n]
					for j := range bp {
						oi[j] += av * bp[j]
					}
				}
			}
		}
	})
}

// parallelRows splits [0, rows) into contiguous stripes and runs f on
// each stripe, using up to GOMAXPROCS goroutines when the output is
// large enough to amortize the fan-out.
func parallelRows(rows, cols int, f func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows*cols < matmulParallelThreshold || workers <= 1 || rows == 1 {
		f(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	stripe := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += stripe {
		r1 := min(r0+stripe, rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			f(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// BatchedMatMul multiplies a [batch,m,k] by b [batch,k,n] producing
// [batch,m,n]. Used by attention (scores and context products).
func BatchedMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchedMatMul wants rank-3 operands, got %v x %v", a.shape, b.shape))
	}
	batch, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != batch || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(batch, m, n)
	var wg sync.WaitGroup
	for bi := 0; bi < batch; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			ab := a.data[bi*m*k : (bi+1)*m*k]
			bb := b.data[bi*k*n : (bi+1)*k*n]
			ob := out.data[bi*m*n : (bi+1)*m*n]
			for i := 0; i < m; i++ {
				ai := ab[i*k : (i+1)*k]
				oi := ob[i*n : (i+1)*n]
				for p := 0; p < k; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := bb[p*n : (p+1)*n]
					for j := range bp {
						oi[j] += av * bp[j]
					}
				}
			}
		}(bi)
	}
	wg.Wait()
	return out
}

// BatchedMatMulTransB multiplies a [batch,m,k] by transpose of
// b [batch,n,k] producing [batch,m,n]. Attention uses this for Q@K^T.
func BatchedMatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransB wants rank-3 operands, got %v x %v", a.shape, b.shape))
	}
	batch, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != batch || b.shape[2] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransB shape mismatch %v x %v^T", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(batch, m, n)
	var wg sync.WaitGroup
	for bi := 0; bi < batch; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			ab := a.data[bi*m*k : (bi+1)*m*k]
			bb := b.data[bi*n*k : (bi+1)*n*k]
			ob := out.data[bi*m*n : (bi+1)*m*n]
			for i := 0; i < m; i++ {
				ai := ab[i*k : (i+1)*k]
				oi := ob[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					bj := bb[j*k : (j+1)*k]
					var s float32
					for p := range ai {
						s += ai[p] * bj[p]
					}
					oi[j] = s
				}
			}
		}(bi)
	}
	wg.Wait()
	return out
}

// BatchedMatMulTransA multiplies transpose of a [batch,m,k] by
// b [batch,m,n] producing [batch,k,n]. Attention backward uses this.
func BatchedMatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransA wants rank-3 operands, got %v x %v", a.shape, b.shape))
	}
	batch, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != batch || b.shape[1] != m {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransA shape mismatch %v^T x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(batch, k, n)
	var wg sync.WaitGroup
	for bi := 0; bi < batch; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			ab := a.data[bi*m*k : (bi+1)*m*k]
			bb := b.data[bi*m*n : (bi+1)*m*n]
			ob := out.data[bi*k*n : (bi+1)*k*n]
			for i := 0; i < m; i++ {
				ai := ab[i*k : (i+1)*k]
				bi2 := bb[i*n : (i+1)*n]
				for kk := 0; kk < k; kk++ {
					av := ai[kk]
					if av == 0 {
						continue
					}
					oi := ob[kk*n : (kk+1)*n]
					for j := range bi2 {
						oi[j] += av * bi2[j]
					}
				}
			}
		}(bi)
	}
	wg.Wait()
	return out
}
