// Package tensor implements a small dense float32 tensor library used by
// the functional (real-math) training path of the STRONGHOLD
// reproduction. It supports the shapes and kernels a GPT-style
// Transformer needs: contiguous row-major tensors, blocked and parallel
// matrix multiplication, broadcast elementwise arithmetic, reductions,
// softmax and layer normalization.
//
// The library is deliberately simple: contiguous row-major layout only,
// float32 only, explicit error-free panics on shape mismatch (shape bugs
// are programming errors, matching the behaviour of the deep-learning
// frameworks the paper builds on).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 tensor.
//
// The zero value is not useful; construct tensors with New, Zeros, Full,
// FromSlice or the random constructors in rng.go.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
}

// New returns a zero-filled tensor of the given shape. A scalar is
// created by passing no dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor of the given shape filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data (not copied) into a tensor of the given shape.
// len(data) must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i, supporting negative indices
// (Dim(-1) is the last dimension).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes
// (shape itself may differ; this mirrors a raw device-buffer copy).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view with a new shape sharing the same storage.
// One dimension may be -1 to be inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: shape, strides: computeStrides(shape), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have identical shape and bit-identical
// contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			// NaN != NaN: treat matching NaNs as equal for test use.
			if !(math.IsNaN(float64(t.data[i])) && math.IsNaN(float64(o.data[i]))) {
				return false
			}
		}
	}
	return true
}

// AllClose reports whether every element of t is within atol+rtol*|o| of
// the corresponding element of o.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(o.data[i])
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus up to 8 leading
// elements), suitable for debugging.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v[", t.shape)
	n := min(len(t.data), 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%.4g", t.data[i])
	}
	if len(t.data) > n {
		sb.WriteString(" ...")
	}
	sb.WriteString("]")
	return sb.String()
}
