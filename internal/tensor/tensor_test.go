package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(3, 4, 5)
	if x.Size() != 60 {
		t.Fatalf("Size = %d, want 60", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	if x.Dim(0) != 3 || x.Dim(1) != 4 || x.Dim(2) != 5 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	if x.Dim(-1) != 5 {
		t.Fatalf("Dim(-1) = %d, want 5", x.Dim(-1))
	}
	if x.Bytes() != 240 {
		t.Fatalf("Bytes = %d, want 240", x.Bytes())
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Size() != 1 || s.Rank() != 0 {
		t.Fatalf("scalar got size=%d rank=%d", s.Size(), s.Rank())
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(42, 1, 2)
	if got := x.At(1, 2); got != 42 {
		t.Fatalf("At(1,2) = %v, want 42", got)
	}
	if got := x.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
	// Row-major layout: element (1,2) is at flat index 5.
	if x.Data()[5] != 42 {
		t.Fatalf("row-major layout violated: %v", x.Data())
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	_ = x.At(2, 0)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 0) != 4 {
		t.Fatalf("At(1,0) = %v, want 4", x.At(1, 0))
	}
	// Shared storage: mutating the slice mutates the tensor.
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeViewsShareStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("reshape must alias storage")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := Full(7, 2, 2)
	y := x.Clone()
	y.Set(0, 0, 0)
	if x.At(0, 0) != 7 {
		t.Fatal("Clone must copy storage")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{1, 2, 3}, 3)
	if !x.Equal(y) {
		t.Fatal("identical tensors must be Equal")
	}
	y.Data()[2] = 3.0001
	if x.Equal(y) {
		t.Fatal("different tensors must not be Equal")
	}
	if !x.AllClose(y, 1e-3, 1e-3) {
		t.Fatal("AllClose should tolerate 1e-4 difference")
	}
	if x.AllClose(New(2), 1, 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestEqualTreatsNaNAsEqual(t *testing.T) {
	nan := float32(math.NaN())
	x := FromSlice([]float32{nan}, 1)
	y := FromSlice([]float32{nan}, 1)
	if !x.Equal(y) {
		t.Fatal("matching NaNs should compare equal for test purposes")
	}
}

func TestAddSubMulDiv(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 40 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Div(b, a).Data(); got[2] != 10 {
		t.Fatalf("Div: %v", got)
	}
}

func TestBroadcastRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	bias := FromSlice([]float32{10, 20, 30}, 3)
	got := Add(a, bias)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("broadcast add got %v, want %v", got.Data(), want)
		}
	}
}

func TestBroadcastScalar(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	s := FromSlice([]float32{5}, 1)
	got := Mul(a, s)
	if got.Data()[0] != 5 || got.Data()[1] != 10 {
		t.Fatalf("scalar broadcast got %v", got.Data())
	}
}

func TestBroadcastMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 3), New(2))
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 4}, 2)
	a.AddScaled(0.5, b)
	if a.Data()[0] != 2 || a.Data()[1] != 3 {
		t.Fatalf("AddScaled got %v", a.Data())
	}
}

func TestSumMeanNorms(t *testing.T) {
	a := FromSlice([]float32{3, -4}, 2)
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.L2Norm()-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", a.L2Norm())
	}
}

func TestSumRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := SumRows(a)
	want := []float32{5, 7, 9}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("SumRows got %v, want %v", got.Data(), want)
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(1)
	x := Randn(r, 3, 4, 7)
	y := Softmax(x)
	for row := 0; row < 4; row++ {
		var s float64
		for c := 0; c < 7; c++ {
			v := y.At(row, c)
			if v <= 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", row, s)
		}
	}
}

func TestSoftmaxStabilityWithLargeLogits(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	y := Softmax(x)
	for _, v := range y.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", y.Data())
		}
	}
	if y.At(0, 1) <= y.At(0, 0) {
		t.Fatal("softmax ordering must follow logits")
	}
}

// TestSoftmaxBackwardNumeric checks the analytic softmax gradient
// against central finite differences.
func TestSoftmaxBackwardNumeric(t *testing.T) {
	r := NewRNG(7)
	x := Randn(r, 1, 2, 5)
	dy := Randn(r, 1, 2, 5)
	y := Softmax(x)
	dx := SoftmaxBackward(y, dy)
	const h = 1e-3
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := lossDot(Softmax(x), dy)
		x.Data()[i] = orig - h
		dn := lossDot(Softmax(x), dy)
		x.Data()[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(dx.Data()[i])) > 1e-2 {
			t.Fatalf("softmax grad[%d]: analytic %v vs numeric %v", i, dx.Data()[i], num)
		}
	}
}

func lossDot(y, dy *Tensor) float64 {
	var s float64
	for i := range y.Data() {
		s += float64(y.Data()[i]) * float64(dy.Data()[i])
	}
	return s
}

func TestGELUValues(t *testing.T) {
	x := FromSlice([]float32{0, 100, -100}, 3)
	y := GELU(x)
	if y.Data()[0] != 0 {
		t.Fatalf("GELU(0) = %v", y.Data()[0])
	}
	if math.Abs(float64(y.Data()[1])-100) > 1e-3 {
		t.Fatalf("GELU(100) = %v, want ~100", y.Data()[1])
	}
	if math.Abs(float64(y.Data()[2])) > 1e-3 {
		t.Fatalf("GELU(-100) = %v, want ~0", y.Data()[2])
	}
}

func TestGELUBackwardNumeric(t *testing.T) {
	r := NewRNG(9)
	x := Randn(r, 1, 6)
	dy := Ones(6)
	dx := GELUBackward(x, dy)
	const h = 1e-3
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := GELU(x).Sum()
		x.Data()[i] = orig - h
		dn := GELU(x).Sum()
		x.Data()[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(dx.Data()[i])) > 1e-2 {
			t.Fatalf("GELU grad[%d]: analytic %v vs numeric %v", i, dx.Data()[i], num)
		}
	}
}

func TestReLUAndTanh(t *testing.T) {
	x := FromSlice([]float32{-1, 2}, 2)
	if got := ReLU(x).Data(); got[0] != 0 || got[1] != 2 {
		t.Fatalf("ReLU got %v", got)
	}
	if got := Tanh(x).Data(); math.Abs(float64(got[1])-math.Tanh(2)) > 1e-6 {
		t.Fatalf("Tanh got %v", got)
	}
}

func TestLayerNormStatistics(t *testing.T) {
	r := NewRNG(3)
	x := Randn(r, 1, 8, 16)
	gamma := Ones(16)
	beta := Zeros(16)
	y, _, _ := LayerNorm(x, gamma, beta, 1e-5)
	for row := 0; row < 8; row++ {
		var m, v float64
		for c := 0; c < 16; c++ {
			m += float64(y.At(row, c))
		}
		m /= 16
		for c := 0; c < 16; c++ {
			d := float64(y.At(row, c)) - m
			v += d * d
		}
		v /= 16
		if math.Abs(m) > 1e-4 || math.Abs(v-1) > 1e-2 {
			t.Fatalf("row %d: mean %v var %v", row, m, v)
		}
	}
}

func TestLayerNormBackwardNumeric(t *testing.T) {
	r := NewRNG(4)
	x := Randn(r, 1, 2, 6)
	gamma := Randn(r, 0.5, 6)
	for i := range gamma.Data() {
		gamma.Data()[i] += 1
	}
	beta := Randn(r, 0.5, 6)
	dy := Randn(r, 1, 2, 6)
	_, mean, invStd := LayerNorm(x, gamma, beta, 1e-5)
	dx, dgamma, dbeta := LayerNormBackward(x, gamma, mean, invStd, dy)

	const h = 1e-3
	f := func() float64 {
		y, _, _ := LayerNorm(x, gamma, beta, 1e-5)
		return lossDot(y, dy)
	}
	check := func(name string, param, grad *Tensor) {
		t.Helper()
		for i := range param.Data() {
			orig := param.Data()[i]
			param.Data()[i] = orig + h
			up := f()
			param.Data()[i] = orig - h
			dn := f()
			param.Data()[i] = orig
			num := (up - dn) / (2 * h)
			if math.Abs(num-float64(grad.Data()[i])) > 2e-2 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("dx", x, dx)
	check("dgamma", gamma, dgamma)
	check("dbeta", beta, dbeta)
}

// Property: Add is commutative and Sub(Add(a,b),b) == a for same-shape
// operands (exact: float addition is commutative, and x+y-y is exact
// only in special cases, so use AllClose).
func TestPropertyAddCommutative(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromSlice(append([]float32(nil), vals...), len(vals))
		b := Randn(NewRNG(uint64(len(vals))), 1, len(vals))
		sanitize(a)
		return Add(a, b).Equal(Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale distributes over Add.
func TestPropertyScaleDistributes(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := Randn(r, 1, 9)
		b := Randn(r, 1, 9)
		lhs := Scale(2, Add(a, b))
		rhs := Add(Scale(2, a), Scale(2, b))
		return lhs.AllClose(rhs, 1e-6, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is independent of the original.
func TestPropertyCloneIndependent(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := Randn(r, 1, 5)
		c := a.Clone()
		a.Fill(0)
		return c.L2Norm() >= 0 && !c.Equal(a) || c.L2Norm() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(t *Tensor) {
	for i, v := range t.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Data()[i] = 0
		}
	}
}
