package expt

import (
	"fmt"

	"stronghold/internal/cluster"
	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// ThroughputRow is one bar of Figure 7: samples/second and achieved
// TFLOPS at a method's largest trainable model.
type ThroughputRow struct {
	Method        modelcfg.Method
	ModelB        float64
	SamplesPerSec float64
	TFLOPS        float64
}

// Figure7a measures throughput at each method's largest model on the
// V100 — the paper set plus the ported strategy-layer methods. The
// paper reports STRONGHOLD at 6–9 TFLOPS versus L2L 1.88, ZeRO-Offload
// 0.59 and ZeRO-Infinity 0.53.
func Figure7a() []ThroughputRow {
	p := hw.V100Platform()
	var rows []ThroughputRow
	for _, m := range methodsOffload {
		cfg := largestConfigFor(m, 1, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
		sps, tf, _ := throughputOf(m, cfg, p)
		rows = append(rows, ThroughputRow{Method: m, ModelB: cfg.ParamsBillion(), SamplesPerSec: sps, TFLOPS: tf})
	}
	return rows
}

// Figure7b is the cluster variant: throughput at each method's largest
// model across the 8-node A10 platform under 8-way model parallelism
// (STRONGHOLD runs data-parallel after the §III-F conversion when the
// model fits a node, model-parallel otherwise).
func Figure7b() []ThroughputRow {
	p := hw.A10ClusterPlatform()
	var rows []ThroughputRow
	for _, m := range methodsSingleGPU {
		cfg := largestConfigFor(m, p.Nodes, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
		res := cluster.Run(cluster.Setup{Plat: p, Cfg: cfg, Method: m, HeteroCollectives: true})
		model := perf.NewModel(cfg, p)
		row := ThroughputRow{Method: m, ModelB: cfg.ParamsBillion()}
		if !res.OOM {
			row.SamplesPerSec = res.Throughput(cfg.BatchSize)
			row.TFLOPS = res.TFLOPS(model.TotalFlops())
		}
		rows = append(rows, row)
	}
	return rows
}

// RelThroughputRow is one bar of Figures 1b and 8a: throughput on the
// common 1.7B model relative to Megatron-LM.
type RelThroughputRow struct {
	Method        modelcfg.Method
	SamplesPerSec float64
	RelMegatron   float64
}

// Figure8a measures every method on the common 1.7B model — the paper
// set plus the ported strategy-layer methods. Paper: L2L 22.2% of
// Megatron, ZeRO-Offload/Infinity <57%, STRONGHOLD the only one above
// Megatron.
func Figure8a() []RelThroughputRow {
	return relThroughput(methodsOffload)
}

// Figure1b is the motivation subset of Figure 8a.
func Figure1b() []RelThroughputRow {
	return relThroughput([]modelcfg.Method{
		modelcfg.Megatron, modelcfg.ZeROOffload,
		modelcfg.ZeROInfinity, modelcfg.ZeROInfinityNVMe,
	})
}

func relThroughput(methods []modelcfg.Method) []RelThroughputRow {
	p := hw.V100Platform()
	cfg := modelcfg.Config1p7B()
	megaSPS, _, _ := throughputOf(modelcfg.Megatron, cfg, p)
	var rows []RelThroughputRow
	for _, m := range methods {
		sps, _, _ := throughputOf(m, cfg, p)
		rows = append(rows, RelThroughputRow{Method: m, SamplesPerSec: sps, RelMegatron: sps / megaSPS})
	}
	return rows
}

// ScalingRow is one point of Figure 8b: iteration time versus model
// size for STRONGHOLD, against a perfect-linear projection from the
// 1.7B point.
type ScalingRow struct {
	SizeB       float64
	IterSec     float64
	LinearSec   float64
	DeviationPc float64
}

// Figure8b sweeps the hidden-2560 Table I family from 1.7B to 39.4B.
func Figure8b() []ScalingRow {
	p := hw.V100Platform()
	var rows []ScalingRow
	var baseSec, baseB float64
	for _, layers := range []int{20, 50, 83, 150, 260, 380, 500} {
		cfg := modelcfg.NewConfig(layers, 2560, 16)
		e := core.NewEngine(perf.NewModel(cfg, p))
		r := e.Run(3, nil)
		if r.OOM {
			continue
		}
		sec := sim.Seconds(r.IterTime)
		b := cfg.ParamsBillion()
		if baseSec == 0 {
			baseSec, baseB = sec, b
		}
		linear := baseSec * b / baseB
		rows = append(rows, ScalingRow{
			SizeB: b, IterSec: sec, LinearSec: linear,
			DeviationPc: (sec - linear) / linear * 100,
		})
	}
	return rows
}

// RenderThroughputRows formats Figure 7 rows.
func RenderThroughputRows(title string, rows []ThroughputRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Method.String(), formatB(r.ModelB),
			fmt.Sprintf("%.3f", r.SamplesPerSec), fmt.Sprintf("%.2f", r.TFLOPS),
		})
	}
	return fmt.Sprintf("%s\n%s", title,
		renderTable([]string{"method", "model", "samples/s", "TFLOPS"}, cells))
}

// RenderRelRows formats Figure 1b/8a rows.
func RenderRelRows(title string, rows []RelThroughputRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Method.String(), fmt.Sprintf("%.3f", r.SamplesPerSec),
			fmt.Sprintf("%.1f%%", r.RelMegatron*100),
		})
	}
	return fmt.Sprintf("%s\n%s", title,
		renderTable([]string{"method", "samples/s", "vs Megatron"}, cells))
}

// RenderScalingRows formats Figure 8b rows.
func RenderScalingRows(title string, rows []ScalingRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			formatB(r.SizeB), fmt.Sprintf("%.2fs", r.IterSec),
			fmt.Sprintf("%.2fs", r.LinearSec), fmt.Sprintf("%+.1f%%", r.DeviationPc),
		})
	}
	return fmt.Sprintf("%s\n%s", title,
		renderTable([]string{"size", "iter", "linear", "deviation"}, cells))
}
