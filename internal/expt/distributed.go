package expt

import (
	"fmt"

	"stronghold/internal/cluster"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
)

// DistRow is one bar of Figure 12: distributed throughput of ZeRO-2,
// ZeRO-3 and STRONGHOLD on the largest ZeRO-2-trainable model (3B,
// batch 1 per GPU) across the 8-node A10 cluster.
type DistRow struct {
	Method        modelcfg.Method
	SamplesPerSec float64 // global samples/s (8 data-parallel workers)
	RelZeRO2      float64
}

// Figure12 reproduces the distributed comparison. Paper: STRONGHOLD
// ≥2.6× ZeRO's throughput by replacing partitioned states with per-node
// offloading and overlapped per-layer all-reduce.
func Figure12() []DistRow {
	p := hw.A10ClusterPlatform()
	cfg := modelcfg.Config3B()
	methods := []modelcfg.Method{modelcfg.ZeRO2, modelcfg.ZeRO3, modelcfg.Stronghold}
	var rows []DistRow
	var z2SPS float64
	for _, m := range methods {
		r := cluster.Run(cluster.Setup{Plat: p, Cfg: cfg, Method: m, HeteroCollectives: true})
		sps := 0.0
		if !r.OOM {
			// All three run data-parallel: global batch = nodes × bs.
			sps = r.Throughput(cfg.BatchSize * p.Nodes)
		}
		if m == modelcfg.ZeRO2 {
			z2SPS = sps
		}
		rows = append(rows, DistRow{Method: m, SamplesPerSec: sps})
	}
	for i := range rows {
		if z2SPS > 0 {
			rows[i].RelZeRO2 = rows[i].SamplesPerSec / z2SPS
		}
	}
	return rows
}

// CommVolumeRow evaluates the §III-F closed-form traffic model for one
// configuration.
type CommVolumeRow struct {
	SizeB     float64
	Layers    int
	Hidden    int
	BatchSize int
	// Ratio is V_mp / V_dp — how much more traffic model parallelism
	// moves than the data parallelism STRONGHOLD converts it into.
	Ratio float64
}

// CommVolume reproduces the §III-F analysis, including the paper's 20B
// example (n=50, hd=4K, bs=16).
func CommVolume() []CommVolumeRow {
	var rows []CommVolumeRow
	for _, c := range []struct {
		layers, hidden, bs int
	}{
		{50, 4096, 4}, {50, 4096, 16}, {50, 4096, 64},
		{100, 2560, 16}, {24, 8192, 16},
	} {
		cfg := modelcfg.NewConfig(c.layers, c.hidden, 16)
		cfg.BatchSize = c.bs
		rows = append(rows, CommVolumeRow{
			SizeB: cfg.ParamsBillion(), Layers: c.layers, Hidden: c.hidden,
			BatchSize: c.bs, Ratio: modelcfg.VolumeRatio(cfg, 8),
		})
	}
	return rows
}

// RenderDistRows formats Figure 12.
func RenderDistRows(rows []DistRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Method.String(),
			fmt.Sprintf("%.3f", r.SamplesPerSec),
			fmt.Sprintf("%.2fx", r.RelZeRO2),
		})
	}
	return "Figure 12: distributed training on 8xA10 (3B model, bs=1/GPU)\n" +
		renderTable([]string{"method", "samples/s", "vs ZeRO-2"}, cells)
}

// RenderCommVolumeRows formats the §III-F table.
func RenderCommVolumeRows(rows []CommVolumeRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			formatB(r.SizeB), fmt.Sprintf("%d", r.Layers), fmt.Sprintf("%d", r.Hidden),
			fmt.Sprintf("%d", r.BatchSize), fmt.Sprintf("%.2f", r.Ratio),
		})
	}
	return "SIII-F: model-parallel vs data-parallel traffic ratio (V_mp/V_dp, w=8)\n" +
		renderTable([]string{"size", "layers", "hidden", "batch", "Vmp/Vdp"}, cells)
}
