package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

// NVMeRow is one point of Figure 10: throughput of STRONGHOLD and
// ZeRO-Infinity when layer states live on NVMe, by model size.
type NVMeRow struct {
	SizeB       float64
	ShSPS       float64 // STRONGHOLD (NVMe) samples/s
	ZinfSPS     float64 // ZeRO-Infinity (NVMe) samples/s
	SpeedupOver float64 // SH / ZI
}

// figure10Platform is the V100 server with the swap volume enlarged to
// 10 TB. Substitution note: reaching the paper's "half a trillion
// parameters" on NVMe requires ≈8 TB of state at FP32 (500e9 × 16 B),
// which exceeds the 2 TB device listed in §V-C — the paper's own
// numbers do not close, so the experiment models a larger swap volume
// and keeps every bandwidth/latency constant from the 2 TB device.
func figure10Platform() hw.Platform {
	p := hw.V100Platform()
	p.NVMe.Bytes = 16 * 1024 * hw.GB
	return p
}

// Figure10 sweeps model size with the NVMe tier enabled. Paper:
// STRONGHOLD improves throughput over ZeRO-Infinity by >8×.
func Figure10() []NVMeRow {
	p := figure10Platform()
	var rows []NVMeRow
	for _, sizeB := range []float64{40, 80, 175, 320, 500} {
		cfg := modelcfg.ConfigForSize(sizeB, 5120, 1)
		cfg.BatchSize = 2
		m := perf.NewModel(cfg, p)

		e := core.NewEngine(m)
		e.Feat.UseNVMe = true
		sh := e.Run(3, nil)

		zi := runMethod(modelcfg.ZeROInfinityNVMe, m)

		row := NVMeRow{SizeB: cfg.ParamsBillion()}
		if !sh.OOM {
			row.ShSPS = sh.Throughput(cfg.BatchSize)
		}
		if !zi.OOM {
			row.ZinfSPS = zi.Throughput(cfg.BatchSize)
		}
		if row.ZinfSPS > 0 {
			row.SpeedupOver = row.ShSPS / row.ZinfSPS
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderNVMeRows formats Figure 10.
func RenderNVMeRows(rows []NVMeRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			formatB(r.SizeB),
			fmt.Sprintf("%.4f", r.ShSPS),
			fmt.Sprintf("%.4f", r.ZinfSPS),
			fmt.Sprintf("%.1fx", r.SpeedupOver),
		})
	}
	return "Figure 10: NVMe-tier throughput (samples/s)\n" +
		renderTable([]string{"size", "STRONGHOLD", "ZeRO-Infinity", "speedup"}, cells)
}
