package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/trace"
)

// Figure4Result is the compute/communication overlap trace of one
// STRONGHOLD iteration on the 4B model (the paper's profiling plot).
type Figure4Result struct {
	Trace      *trace.Trace
	Overlap    float64 // fraction of transfer time hidden under compute
	IterSec    float64
	Window     int
	ChromeJSON []byte
}

// Figure4 runs the 4B model with the solver-chosen window and records
// the final iteration's timeline.
func Figure4() (Figure4Result, error) {
	m := perf.NewModel(modelcfg.Config4B(), hw.V100Platform())
	e := core.NewEngine(m)
	d, err := e.SolvedWindow()
	if err != nil {
		return Figure4Result{}, err
	}
	tr := trace.New()
	r := e.Run(3, tr)
	if r.OOM {
		return Figure4Result{}, fmt.Errorf("expt: figure 4 run failed: %s", r.OOMDetail)
	}
	js, err := tr.ChromeJSON()
	if err != nil {
		return Figure4Result{}, err
	}
	return Figure4Result{
		Trace: tr, Overlap: r.Overlap,
		IterSec: float64(r.IterTime) / 1e9, Window: d.M, ChromeJSON: js,
	}, nil
}

// WindowRow is one point of Figure 9: throughput versus working-window
// size for the 1.7B and 39.4B models.
type WindowRow struct {
	Window         int
	Small1p7SPS    float64 // samples/s, 1.7B
	Large39SPS     float64 // samples/s, 39.4B
	SolverChoice   bool    // the analytically chosen window
	OOMLargeWindow bool
}

// Figure9 sweeps the window size. The paper observes throughput rising
// to a plateau; STRONGHOLD's analytical model picks the knee.
func Figure9() ([]WindowRow, int, error) {
	p := hw.V100Platform()
	small := modelcfg.Config1p7B()
	large := modelcfg.Config39p5B()
	solver := core.NewEngine(perf.NewModel(small, p))
	solver.Feat.Streams = 1
	d, err := solver.SolvedWindow()
	if err != nil {
		return nil, 0, err
	}
	var rows []WindowRow
	for _, w := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		row := WindowRow{Window: w, SolverChoice: w == d.M}
		for _, cfg := range []modelcfg.Config{small, large} {
			e := core.NewEngine(perf.NewModel(cfg, p))
			e.Window = w
			e.Feat.Streams = 1
			r := e.Run(3, nil)
			if r.OOM {
				row.OOMLargeWindow = true
				continue
			}
			sps := r.Throughput(cfg.BatchSize)
			if cfg.Layers == small.Layers {
				row.Small1p7SPS = sps
			} else {
				row.Large39SPS = sps
			}
		}
		rows = append(rows, row)
	}
	return rows, d.M, nil
}

// RenderWindowRows formats Figure 9.
func RenderWindowRows(rows []WindowRow, solved int) string {
	var cells [][]string
	for _, r := range rows {
		mark := ""
		if r.SolverChoice {
			mark = "<- solver"
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.3f", r.Small1p7SPS),
			fmt.Sprintf("%.4f", r.Large39SPS),
			mark,
		})
	}
	return fmt.Sprintf("Figure 9: throughput vs window size (solver picks m=%d)\n%s", solved,
		renderTable([]string{"window", "1.7B samples/s", "39.4B samples/s", ""}, cells))
}
