package expt

import (
	"fmt"
	"strings"
)

// ASCII charts — the terminal-native equivalent of the artifact's
// case*_draw.py scripts. BarChart renders labeled horizontal bars;
// LineChart renders one series against an x axis. Both normalize to the
// maximum value and stay dependency-free.

// BarChart renders label→value pairs as horizontal bars of up to width
// cells, annotated with the value via format (e.g. "%.1f").
func BarChart(title string, labels []string, values []float64, width int, format string) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return title + "\n(no data)\n"
	}
	if width < 10 {
		width = 10
	}
	maxV := values[0]
	labelW := len(labels[0])
	for i, l := range labels {
		if values[i] > maxV {
			maxV = values[i]
		}
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for i, l := range labels {
		n := 0
		if maxV > 0 {
			n = int(values[i] / maxV * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %s\n", labelW, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n),
			fmt.Sprintf(format, values[i]))
	}
	return sb.String()
}

// LineChart renders y(x) as a height-row ASCII plot with '*' marks,
// linearly scaled in both axes.
func LineChart(title string, xs, ys []float64, width, height int) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return title + "\n(no data)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX, maxX = min(minX, xs[i]), max(maxX, xs[i])
		minY, maxY = min(minY, ys[i]), max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
		r := int((ys[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%8.3g ^\n", maxY)
	for _, row := range grid {
		sb.WriteString("         |" + string(row) + "\n")
	}
	fmt.Fprintf(&sb, "%8.3g +%s>\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&sb, "          %-8.3g%s%8.3g\n", minX, strings.Repeat(" ", max(width-16, 1)), maxX)
	return sb.String()
}

// ChartFigure9 draws the window-size sweep as a line chart.
func ChartFigure9(rows []WindowRow, solved int) string {
	xs := make([]float64, len(rows))
	ys := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(r.Window)
		ys[i] = r.Small1p7SPS
	}
	return LineChart(fmt.Sprintf("Figure 9 (1.7B): samples/s vs window (solver: m=%d)", solved),
		xs, ys, 48, 8)
}

// ChartFigure6a draws the capacity comparison as bars.
func ChartFigure6a(rows []SizeRow) string {
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Method.String()
		values[i] = r.MaxB
	}
	return BarChart("Figure 6a: largest trainable size (B parameters)", labels, values, 40, "%.1fB")
}

// ChartFigure8a draws relative throughput as bars.
func ChartFigure8a(rows []RelThroughputRow) string {
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Method.String()
		values[i] = r.RelMegatron * 100
	}
	return BarChart("Figure 8a: throughput vs Megatron-LM (%)", labels, values, 40, "%.0f%%")
}
