package expt

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden figure fixtures")

// TestGoldenFigures pins the rendered Fig. 7a/8a and fault-comparison
// tables — the outputs the strategy layer extends. The simulator is
// deterministic, so any drift in method set, calibration or schedule
// shows up as a byte diff. Regenerate with
// `go test ./internal/expt -run TestGoldenFigures -update` and review
// the diff like any result change.
func TestGoldenFigures(t *testing.T) {
	faultRows, err := FaultComparison()
	if err != nil {
		t.Fatalf("faultcmp: %v", err)
	}
	fixtures := map[string]string{
		"fig7a":    RenderThroughputRows("Figure 7a: throughput at each method's largest model (V100)", Figure7a()),
		"fig8a":    RenderRelRows("Figure 8a: throughput on the common 1.7B model (V100)", Figure8a()),
		"faultcmp": RenderFaultRows(faultRows),
	}
	for name, got := range fixtures {
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing fixture (run with -update): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: figure drifted from its golden fixture (run with -update and review)\nwant:\n%s\ngot:\n%s",
				name, want, got)
		}
	}
}
