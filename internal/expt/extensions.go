package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// Extension experiments beyond the paper's figures: quantify two design
// margins the paper asserts qualitatively — how window depth absorbs
// transfer-time variability (§III-D's "suitable working window"), and
// what the fixed-size-buffer mode buys on heterogeneous models
// (§III-D's user-enabled option).

// JitterRow is one point of the robustness study: throughput retention
// under transfer jitter, by window size.
type JitterRow struct {
	Window int
	// Retention is jittered throughput over jitter-free throughput
	// (1.0 = fully absorbed).
	Retention float64
}

// JitterStudy sweeps window sizes on the 1.7B model under heavy
// (deterministic, seeded) transfer jitter.
func JitterStudy(jitter float64) []JitterRow {
	if jitter <= 0 {
		jitter = 3.0
	}
	var rows []JitterRow
	for _, w := range []int{1, 2, 4, 8} {
		run := func(j float64) sim.Time {
			e := core.NewEngine(perf.NewModel(modelcfg.Config1p7B(), hw.V100Platform()))
			e.Window = w
			e.Feat.Streams = 1
			e.TransferJitter = j
			return e.Run(3, nil).IterTime
		}
		base, jittered := run(0), run(jitter)
		rows = append(rows, JitterRow{Window: w, Retention: float64(base) / float64(jittered)})
	}
	return rows
}

// RenderJitterRows formats the robustness study.
func RenderJitterRows(rows []JitterRow, jitter float64) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.1f%%", r.Retention*100),
		})
	}
	return fmt.Sprintf("Extension: throughput retention under %.0fx transfer jitter (1.7B)\n%s",
		jitter, renderTable([]string{"window", "retention"}, cells))
}

// HeteroRow compares fixed-count and fixed-budget windows on a
// heterogeneous (alternating dense/wide) model.
type HeteroRow struct {
	Strategy   string
	GPUBytes   int64
	HidesXfers bool
}

// HeteroWindowStudy plans windows for an alternating 1x/3x layer mix:
// the fixed-count window must size every buffer for the widest layer,
// while the fixed-budget mode packs more narrow layers into the same
// bytes — the §III-D memory-utilization argument.
func HeteroWindowStudy() ([]HeteroRow, error) {
	m := perf.NewModel(modelcfg.Config1p7B(), hw.V100Platform())
	e := core.NewEngine(m)
	prof := core.UniformProfile(m, 16*hw.GB, 16)
	for i := range prof.Layers {
		if i%2 == 1 {
			prof.Layers[i].SFP *= 3
			prof.Layers[i].SBP *= 3
			prof.Layers[i].TFP *= 3
			prof.Layers[i].TBP *= 3
			prof.Layers[i].TC2G *= 3
			prof.Layers[i].TG2C *= 3
		}
	}
	d, err := core.SolveWindow(prof)
	if err != nil {
		return nil, err
	}
	// Fixed count: m buffers each sized for the widest layer.
	widest := prof.Layers[1].SBP
	fixedCount := HeteroRow{
		Strategy: fmt.Sprintf("fixed count (m=%d, widest-sized buffers)", d.M),
		GPUBytes: int64(d.M+1) * widest,
	}
	budget, err := core.MinBudgetToHide(prof, widest, 64*hw.GB)
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanFixedBudget(prof, budget)
	if err != nil {
		return nil, err
	}
	fixedBudget := HeteroRow{
		Strategy:   fmt.Sprintf("fixed budget (%d-%d layers dynamic)", plan.MinLayers, plan.MaxLayers),
		GPUBytes:   budget,
		HidesXfers: plan.HidesTransfers(prof),
	}
	// Does the fixed-count window hide transfers? Evaluate via the
	// budget it implies.
	if cPlan, err := core.PlanFixedBudget(prof, fixedCount.GPUBytes); err == nil {
		fixedCount.HidesXfers = cPlan.HidesTransfers(prof)
	}
	_ = e
	return []HeteroRow{fixedCount, fixedBudget}, nil
}

// RenderHeteroRows formats the heterogeneous-window study.
func RenderHeteroRows(rows []HeteroRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Strategy,
			fmt.Sprintf("%.2fGB", float64(r.GPUBytes)/float64(hw.GB)),
			fmt.Sprintf("%v", r.HidesXfers),
		})
	}
	return "Extension: window strategies on a heterogeneous (1x/3x) model\n" +
		renderTable([]string{"strategy", "window bytes", "hides transfers"}, cells)
}
