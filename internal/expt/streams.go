package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

// StreamRow is one bar of Figure 11: STRONGHOLD's multi-stream speedup
// over Megatron-LM at a given batch size.
type StreamRow struct {
	BatchSize int
	Streams   int
	Speedup   float64 // over Megatron-LM at the same batch
}

// Figure11 measures the §IV-A optimization across batch sizes on a
// 1.3B model — the largest configuration Megatron-LM trains at *every*
// batch size in our byte-accurate accounting (at bs=16 the 1.7B model's
// 27.2 GB of FP32 states plus activations no longer fit a 32 GB V100).
// Paper: at least 1.7× (up to 2.1×) over Megatron-LM.
func Figure11() []StreamRow {
	p := hw.V100Platform()
	var rows []StreamRow
	for _, bs := range []int{2, 4, 8, 16} {
		cfg := modelcfg.NewConfig(16, 2560, 16) // 1.3B
		cfg.BatchSize = bs
		mega := runMethod(modelcfg.Megatron, perf.NewModel(cfg, p))

		e := core.NewEngine(perf.NewModel(cfg, p))
		d, err := e.SolvedWindow()
		streams := 0
		if err == nil {
			streams = e.PickStreams(d.M)
		}
		sh := e.Run(3, nil)

		row := StreamRow{BatchSize: bs, Streams: streams}
		if !mega.OOM && !sh.OOM {
			row.Speedup = float64(mega.IterTime) / float64(sh.IterTime)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderStreamRows formats Figure 11.
func RenderStreamRows(rows []StreamRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.BatchSize),
			fmt.Sprintf("%d", r.Streams),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return "Figure 11: multi-stream speedup over Megatron-LM (1.7B)\n" +
		renderTable([]string{"batch", "streams", "speedup"}, cells)
}
