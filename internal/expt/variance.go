package expt

import (
	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// VarianceReport implements the §V-D reporting protocol: run each test
// case 10 times, report the geometric mean, and check run-to-run
// variance. On real hardware the paper measures <3%; the simulator is
// deterministic, so reproducing the protocol demonstrates 0% variance —
// which is what lets the test suite assert figure shapes exactly.
type VarianceReport struct {
	Runs          int
	GeoMeanSPS    float64
	MaxDeviationP float64 // max |x−mean|/mean across runs, percent
	Deterministic bool
}

// Variance runs the 1.7B STRONGHOLD case `runs` times (default 10).
func Variance(runs int) VarianceReport {
	if runs <= 0 {
		runs = 10
	}
	cfg := modelcfg.Config1p7B()
	var sps []float64
	for i := 0; i < runs; i++ {
		e := core.NewEngine(perf.NewModel(cfg, hw.V100Platform()))
		r := e.Run(3, nil)
		if r.OOM {
			return VarianceReport{Runs: runs}
		}
		sps = append(sps, float64(cfg.BatchSize)/sim.Seconds(r.IterTime))
	}
	gm := GeoMean(sps)
	maxDev := 0.0
	deterministic := true
	for _, x := range sps {
		dev := (x - gm) / gm * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
		if x != sps[0] {
			deterministic = false
		}
	}
	return VarianceReport{
		Runs: runs, GeoMeanSPS: gm,
		MaxDeviationP: maxDev, Deterministic: deterministic,
	}
}
