package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// AblationRow is one bar of Figure 14: the speedup from enabling one
// optimization on the unoptimized offloading baseline (4B model, NVMe
// enabled).
type AblationRow struct {
	Optimization string
	Speedup      float64
	PaperSpeedup float64
}

// Figure14 runs the ablation. Paper: concurrent parameter update ≈1.5×,
// memory management ≈2.2×, multi-stream ≈2×.
func Figure14() []AblationRow {
	cfg := modelcfg.Config4B()
	run := func(f core.Features) sim.Time {
		f.UseNVMe = true
		if f.Streams == 0 {
			f.Streams = 1
		}
		e := core.NewEngine(perf.NewModel(cfg, hw.V100Platform()))
		e.Feat = f
		r := e.Run(3, nil)
		if r.OOM {
			return 0
		}
		return r.IterTime
	}
	base := run(core.Features{})
	full := core.DefaultFeatures()
	full.Streams = 2
	fullMinusStreams := full
	fullMinusStreams.Streams = 1
	rows := []AblationRow{
		{
			Optimization: "concurrent parameter update (SIII-E1/E2)",
			Speedup:      ratio(base, run(core.Features{ConcurrentOptimizers: true})),
			PaperSpeedup: 1.5,
		},
		{
			Optimization: "runtime memory management (SIII-E3)",
			Speedup:      ratio(base, run(core.Features{UserLevelMemMgmt: true})),
			PaperSpeedup: 2.2,
		},
		{
			// Multi-streaming acts on the compute stage, so its gain is
			// only visible once transfers and updates overlap; this bar
			// therefore compares the full system against full-minus-
			// streams (on the unoptimized baseline the pipeline is
			// transfer/optimizer-bound and extra streams change
			// nothing — see EXPERIMENTS.md).
			Optimization: "multi-streamed execution (SIV-A)",
			Speedup:      ratio(run(fullMinusStreams), run(full)),
			PaperSpeedup: 2.0,
		},
	}
	return rows
}

func ratio(base, with sim.Time) float64 {
	if with <= 0 {
		return 0
	}
	return float64(base) / float64(with)
}

// RenderAblationRows formats Figure 14.
func RenderAblationRows(rows []AblationRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Optimization,
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1fx", r.PaperSpeedup),
		})
	}
	return "Figure 14: per-optimization speedup over unoptimized offloading (4B, NVMe)\n" +
		renderTable([]string{"optimization", "speedup", "paper"}, cells)
}

// TableIRow mirrors one expanded Table I configuration.
type TableIRow struct {
	SizeB   float64
	Layers  int
	Hidden  int
	Heads   int
	MP      int
	ParamsB float64 // computed from the formula
}

// TableIRows regenerates Table I.
func TableIRows() []TableIRow {
	var rows []TableIRow
	for _, e := range modelcfg.TableI() {
		rows = append(rows, TableIRow{
			SizeB: e.SizeB, Layers: e.Config.Layers, Hidden: e.Config.Hidden,
			Heads: e.Config.Heads, MP: e.Config.ModelParallel, ParamsB: e.Config.ParamsBillion(),
		})
	}
	return rows
}

// RenderTableI formats Table I.
func RenderTableI(rows []TableIRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			formatB(r.ParamsB), fmt.Sprintf("%d", r.Layers), fmt.Sprintf("%d", r.Hidden),
			fmt.Sprintf("%d", r.Heads), fmt.Sprintf("%d", r.MP),
		})
	}
	return "Table I: Transformer-based model configurations\n" +
		renderTable([]string{"size", "layers", "hidden", "heads", "MP"}, cells)
}
