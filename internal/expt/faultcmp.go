package expt

import (
	"fmt"

	"stronghold/internal/baselines"
	"stronghold/internal/core"
	"stronghold/internal/fault"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// PCIeDegradationPlan is the EXPERIMENTS.md fault plan: both PCIe
// directions drop to quarter bandwidth for 30s out of every 60s over
// the first twenty minutes — the sustained link-contention profile of
// a noisy multi-tenant host.
const PCIeDegradationPlan = "h2d:slow(at=0s,dur=30s,every=60s,count=20,factor=0.25);" +
	"d2h:slow(at=0s,dur=30s,every=60s,count=20,factor=0.25)"

// FaultRow is one method's clean-versus-degraded comparison under the
// PCIe-degradation fault plan.
type FaultRow struct {
	Method     modelcfg.Method
	CleanSec   float64
	FaultSec   float64
	SlowdownPc float64
	// Degraded-mode counters (STRONGHOLD methods only; the baselines
	// stretch through fault windows without a reissue path).
	Retries        uint64
	WindowResolves uint64
}

// FaultComparison runs every plan-driven single-node method on the
// common 1.7B model, clean and under PCIeDegradationPlan — the
// strategy-layer robustness study: all five schedules degrade through
// the same injected windows, only STRONGHOLD adapts.
func FaultComparison() ([]FaultRow, error) {
	plan, err := fault.ParsePlan(PCIeDegradationPlan)
	if err != nil {
		return nil, err
	}
	p := hw.V100Platform()
	cfg := modelcfg.Config1p7B()
	var rows []FaultRow
	for _, info := range modelcfg.Methods() {
		if !info.PlanDriven || info.Distributed || info.NVMe {
			continue
		}
		m := perf.NewModel(cfg, p)
		var clean, hurt perf.IterationResult
		if info.Engine == modelcfg.EngineCore {
			clean = core.NewEngine(m).Run(3, nil)
			e := core.NewEngine(m)
			e.Faults = plan
			hurt = e.Run(3, nil)
		} else {
			clean, hurt = baselines.Degradation(info.M, m, plan)
		}
		if clean.OOM || hurt.OOM {
			return nil, fmt.Errorf("faultcmp: %s does not fit the 1.7B model", info.M)
		}
		cs, fs := sim.Seconds(clean.IterTime), sim.Seconds(hurt.IterTime)
		rows = append(rows, FaultRow{
			Method: info.M, CleanSec: cs, FaultSec: fs,
			SlowdownPc:     (fs/cs - 1) * 100,
			Retries:        hurt.Retries,
			WindowResolves: hurt.WindowResolves,
		})
	}
	return rows, nil
}

// RenderFaultRows formats the fault-comparison table.
func RenderFaultRows(rows []FaultRow) string {
	var cells [][]string
	for _, r := range rows {
		adapt := "-"
		if r.Retries > 0 || r.WindowResolves > 0 {
			adapt = fmt.Sprintf("%d retries, %d re-solves", r.Retries, r.WindowResolves)
		}
		cells = append(cells, []string{
			r.Method.String(), fmt.Sprintf("%.2fs", r.CleanSec),
			fmt.Sprintf("%.2fs", r.FaultSec), fmt.Sprintf("%+.1f%%", r.SlowdownPc),
			adapt,
		})
	}
	return "Fault comparison: PCIe degraded to 25% for 30s/60s (1.7B, V100)\n" +
		renderTable([]string{"method", "clean", "degraded", "slowdown", "degraded mode"}, cells)
}
