package expt

import (
	"fmt"

	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// InferRow is one point of Figure 13: forward-only (knowledge
// distillation) latency for resident PyTorch inference versus
// STRONGHOLD's windowed serving.
type InferRow struct {
	SizeB      float64
	PyTorchSec float64 // 0 when OOM
	PyTorchOOM bool
	ShSec      float64
	ShOOM      bool
}

// Figure13 sweeps teacher-model sizes. Paper: similar latency at small
// sizes, PyTorch OOMs beyond device memory, STRONGHOLD scales linearly.
func Figure13() []InferRow {
	p := hw.V100Platform()
	var rows []InferRow
	for _, sizeB := range []float64{1.7, 4, 7, 13, 20, 39, 60} {
		cfg := modelcfg.ConfigForSize(sizeB, 2560, 1)
		m := perf.NewModel(cfg, p)
		pt := core.PyTorchInference(m)
		sh := (&core.InferenceEngine{Model: m}).Run()
		rows = append(rows, InferRow{
			SizeB:      cfg.ParamsBillion(),
			PyTorchSec: sim.Seconds(pt.IterTime), PyTorchOOM: pt.OOM,
			ShSec: sim.Seconds(sh.IterTime), ShOOM: sh.OOM,
		})
	}
	return rows
}

// RenderInferRows formats Figure 13.
func RenderInferRows(rows []InferRow) string {
	var cells [][]string
	fmtCell := func(sec float64, oom bool) string {
		if oom {
			return "OOM"
		}
		return fmt.Sprintf("%.2fs", sec)
	}
	for _, r := range rows {
		cells = append(cells, []string{
			formatB(r.SizeB),
			fmtCell(r.PyTorchSec, r.PyTorchOOM),
			fmtCell(r.ShSec, r.ShOOM),
		})
	}
	return "Figure 13: forward-only inference for knowledge distillation\n" +
		renderTable([]string{"size", "PyTorch", "STRONGHOLD"}, cells)
}
