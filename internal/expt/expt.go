// Package expt regenerates every table and figure of the paper's
// evaluation (§V–§VI) from the simulation substrate: one runner per
// experiment, each returning the rows/series the paper reports. The
// cmd/stronghold-figures binary prints them; bench_test.go at the
// repository root wraps each in a testing.B benchmark.
package expt

import (
	"fmt"
	"math"
	"strings"

	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

// GeoMean returns the geometric mean of xs — the paper's aggregation
// across repeated runs (§V-D).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// methodsSingleGPU is the Figure 6a comparison set in paper order —
// the registry rows flagged SingleGPU.
var methodsSingleGPU = modelcfg.SingleGPUMethods()

// methodsOffload extends the paper set with the ported strategy-layer
// methods (ZeRO-Infinity on NVMe, Deep Optimizer States' interleaved
// placement) — the Figure 7a/8a comparison after the method registry,
// in registry display order.
var methodsOffload = func() []modelcfg.Method {
	var out []modelcfg.Method
	for _, info := range modelcfg.Methods() {
		if info.SingleGPU || info.M == modelcfg.ZeROInfinityNVMe || info.M == modelcfg.InterleavedOpt {
			out = append(out, info.M)
		}
	}
	return out
}()

// searchSpace is the configuration family the capacity experiments
// sweep, mirroring §V-B ("vary the hidden dimension … and the number of
// layers"; batch 2–16 per GPU).
var (
	searchHidden  = []int{2560, 4096, 5120}
	searchBatches = []int{2, 4, 8, 16}
)

// formatB renders billions with one decimal, the paper's unit.
func formatB(b float64) string { return fmt.Sprintf("%.1fB", b) }

// renderTable is a small fixed-width table printer shared by the
// String methods.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	for i, w := range widths {
		header[i] = strings.Repeat("-", w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// throughputOf runs method on cfg (V100 platform) and returns
// samples/second and achieved TFLOPS.
func throughputOf(method modelcfg.Method, cfg modelcfg.Config, plat hw.Platform) (samplesPerSec, tflops float64, res perf.IterationResult) {
	m := perf.NewModel(cfg, plat)
	res = runMethod(method, m)
	if res.OOM {
		return 0, 0, res
	}
	return res.Throughput(cfg.BatchSize), res.TFLOPS(m.TotalFlops()), res
}
