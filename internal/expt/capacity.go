package expt

import (
	"fmt"

	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
)

// SizeRow is one bar of Figure 6: a method's smallest and largest
// maximum-trainable size across the §V-B configuration family.
type SizeRow struct {
	Method     modelcfg.Method
	MinB, MaxB float64
	// PaperB is the value the paper reports for the headline (max)
	// case, for side-by-side comparison; 0 when the paper gives none.
	PaperB float64
}

// Figure6a reproduces "the largest trainable model size on a 32GB V100
// GPU": Megatron 1.7B, L2L/ZeRO-Offload ≈6B, ZeRO-Infinity 20.6B,
// STRONGHOLD 39.5B.
func Figure6a() []SizeRow {
	p := hw.V100Platform()
	paper := map[modelcfg.Method]float64{
		modelcfg.Megatron:     1.7,
		modelcfg.L2L:          6.0,
		modelcfg.ZeROOffload:  6.0,
		modelcfg.ZeROInfinity: 20.6,
		modelcfg.Stronghold:   39.5,
	}
	var rows []SizeRow
	for _, m := range methodsSingleGPU {
		minB, maxB := largestFor(m, 1, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
		rows = append(rows, SizeRow{Method: m, MinB: minB, MaxB: maxB, PaperB: paper[m]})
	}
	return rows
}

// Figure6b reproduces the cluster version (8×A10, 8-way model
// parallelism): ZeRO-Infinity 56.9B, STRONGHOLD 82.1B.
func Figure6b() []SizeRow {
	p := hw.A10ClusterPlatform()
	paper := map[modelcfg.Method]float64{
		modelcfg.ZeROInfinity: 56.9,
		modelcfg.Stronghold:   82.1,
	}
	var rows []SizeRow
	for _, m := range methodsSingleGPU {
		minB, maxB := largestFor(m, p.Nodes, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
		rows = append(rows, SizeRow{Method: m, MinB: minB, MaxB: maxB, PaperB: paper[m]})
	}
	return rows
}

// Figure1a is the motivation subset of Figure 6a (Megatron vs
// ZeRO-Offload vs ZeRO-Infinity, ±NVMe).
func Figure1a() []SizeRow {
	p := hw.V100Platform()
	var rows []SizeRow
	for _, m := range []modelcfg.Method{
		modelcfg.Megatron, modelcfg.ZeROOffload,
		modelcfg.ZeROInfinity, modelcfg.ZeROInfinityNVMe,
	} {
		minB, maxB := largestFor(m, 1, p.GPU.MemBytes, p.CPU.UsableMemBytes, p.NVMe.Bytes)
		rows = append(rows, SizeRow{Method: m, MinB: minB, MaxB: maxB})
	}
	return rows
}

// RenderSizeRows formats capacity rows as a table.
func RenderSizeRows(title string, rows []SizeRow) string {
	var cells [][]string
	for _, r := range rows {
		paper := "-"
		if r.PaperB > 0 {
			paper = formatB(r.PaperB)
		}
		cells = append(cells, []string{r.Method.String(), formatB(r.MinB), formatB(r.MaxB), paper})
	}
	return fmt.Sprintf("%s\n%s", title,
		renderTable([]string{"method", "min", "max", "paper"}, cells))
}
