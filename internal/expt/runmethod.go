package expt

import (
	"stronghold/internal/baselines"
	"stronghold/internal/core"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

// runMethod dispatches one single-GPU training-iteration simulation:
// STRONGHOLD variants go through the discrete-event engine, baselines
// through their closed-form schedules.
func runMethod(method modelcfg.Method, m perf.Model) perf.IterationResult {
	switch method {
	case modelcfg.Stronghold, modelcfg.StrongholdNVMe:
		e := core.NewEngine(m)
		if method == modelcfg.StrongholdNVMe {
			e.Feat.UseNVMe = true
		}
		return e.Run(3, nil)
	default:
		return baselines.Run(method, m)
	}
}

// largestFor searches the §V-B family for the biggest model method can
// train on the platform capacities, returning (minAcrossSettings,
// maxAcrossSettings) in billions — the paper's Fig. 6 min-max bars.
func largestFor(method modelcfg.Method, mp int, gpuBytes, hostBytes, diskBytes int64) (minB, maxB float64) {
	minB = -1
	for _, h := range searchHidden {
		for _, bs := range searchBatches {
			b := modelcfg.LargestTrainable(method, h, mp, []int{bs}, 8, gpuBytes, hostBytes, diskBytes)
			if b > maxB {
				maxB = b
			}
			if b > 0 && (minB < 0 || b < minB) {
				minB = b
			}
		}
	}
	if minB < 0 {
		minB = 0
	}
	return minB, maxB
}

// largestConfigFor returns a concrete config achieving (approximately)
// method's largest trainable size — what Figure 7 measures throughput
// on.
func largestConfigFor(method modelcfg.Method, mp int, gpuBytes, hostBytes, diskBytes int64) modelcfg.Config {
	bestB := 0.0
	var best modelcfg.Config
	for _, h := range searchHidden {
		for _, bs := range searchBatches {
			b := modelcfg.LargestTrainable(method, h, mp, []int{bs}, 8, gpuBytes, hostBytes, diskBytes)
			if b > bestB {
				bestB = b
				c := modelcfg.ConfigForSize(b, h, mp)
				c.BatchSize = bs
				best = c
			}
		}
	}
	return best
}
