package expt

import (
	"stronghold/internal/baselines"
	"stronghold/internal/core"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

// runMethod dispatches one single-GPU training-iteration simulation
// through the method registry: EngineCore rows go through the
// discrete-event engine, everything else through the baseline engine
// (which itself rejects the cluster-only rows).
func runMethod(method modelcfg.Method, m perf.Model) perf.IterationResult {
	if info := modelcfg.Lookup(method); info != nil && info.Engine == modelcfg.EngineCore {
		e := core.NewEngine(m)
		e.Feat.UseNVMe = info.NVMe
		return e.Run(3, nil)
	}
	return baselines.Run(method, m)
}

// largestFor searches the §V-B family for the biggest model method can
// train on the platform capacities, returning (minAcrossSettings,
// maxAcrossSettings) in billions — the paper's Fig. 6 min-max bars.
func largestFor(method modelcfg.Method, mp int, gpuBytes, hostBytes, diskBytes int64) (minB, maxB float64) {
	minB = -1
	for _, h := range searchHidden {
		for _, bs := range searchBatches {
			b := modelcfg.LargestTrainable(method, h, mp, []int{bs}, 8, gpuBytes, hostBytes, diskBytes)
			if b > maxB {
				maxB = b
			}
			if b > 0 && (minB < 0 || b < minB) {
				minB = b
			}
		}
	}
	if minB < 0 {
		minB = 0
	}
	return minB, maxB
}

// largestConfigFor returns a concrete config achieving (approximately)
// method's largest trainable size — what Figure 7 measures throughput
// on.
func largestConfigFor(method modelcfg.Method, mp int, gpuBytes, hostBytes, diskBytes int64) modelcfg.Config {
	bestB := 0.0
	var best modelcfg.Config
	for _, h := range searchHidden {
		for _, bs := range searchBatches {
			b := modelcfg.LargestTrainable(method, h, mp, []int{bs}, 8, gpuBytes, hostBytes, diskBytes)
			if b > bestB {
				bestB = b
				c := modelcfg.ConfigForSize(b, h, mp)
				c.BatchSize = bs
				best = c
			}
		}
	}
	return best
}
