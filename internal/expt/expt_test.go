package expt

import (
	"math"
	"strings"
	"testing"

	"stronghold/internal/modelcfg"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("GeoMean = %v, want 4", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func rowFor(rows []SizeRow, m modelcfg.Method) SizeRow {
	for _, r := range rows {
		if r.Method == m {
			return r
		}
	}
	return SizeRow{}
}

func TestFigure6aHeadlines(t *testing.T) {
	rows := Figure6a()
	if len(rows) != 5 {
		t.Fatalf("want 5 methods, got %d", len(rows))
	}
	for _, r := range rows {
		if r.PaperB == 0 {
			t.Fatalf("%s missing paper reference", r.Method)
		}
		// Shape: within ±25% of the paper's headline.
		if r.MaxB < r.PaperB*0.75 || r.MaxB > r.PaperB*1.25 {
			t.Errorf("%s max %.1fB vs paper %.1fB (outside 25%%)", r.Method, r.MaxB, r.PaperB)
		}
		if r.MinB > r.MaxB {
			t.Errorf("%s min %.1f > max %.1f", r.Method, r.MinB, r.MaxB)
		}
	}
	sh := rowFor(rows, modelcfg.Stronghold)
	zi := rowFor(rows, modelcfg.ZeROInfinity)
	mega := rowFor(rows, modelcfg.Megatron)
	if !(sh.MaxB > zi.MaxB && zi.MaxB > mega.MaxB) {
		t.Fatalf("ordering violated: sh=%.1f zi=%.1f mega=%.1f", sh.MaxB, zi.MaxB, mega.MaxB)
	}
	// Paper ratios: SH ≈ 6.5x L2L/ZeRO-Offload, ≈1.9x ZeRO-Infinity.
	l2l := rowFor(rows, modelcfg.L2L)
	if ratio := sh.MaxB / l2l.MaxB; ratio < 4.5 || ratio > 9 {
		t.Errorf("SH/L2L ratio %.1f, paper 6.5x", ratio)
	}
	if ratio := sh.MaxB / zi.MaxB; ratio < 1.4 || ratio > 2.6 {
		t.Errorf("SH/ZI ratio %.1f, paper 1.9x", ratio)
	}
}

func TestFigure6bHeadlines(t *testing.T) {
	rows := Figure6b()
	sh := rowFor(rows, modelcfg.Stronghold)
	zi := rowFor(rows, modelcfg.ZeROInfinity)
	if sh.MaxB <= zi.MaxB {
		t.Fatalf("STRONGHOLD (%.1fB) must beat ZeRO-Infinity (%.1fB) on the cluster", sh.MaxB, zi.MaxB)
	}
	if sh.MaxB < 62 || sh.MaxB > 103 {
		t.Errorf("SH cluster max %.1fB, paper 82.1B", sh.MaxB)
	}
	if zi.MaxB < 43 || zi.MaxB > 71 {
		t.Errorf("ZI cluster max %.1fB, paper 56.9B", zi.MaxB)
	}
	// L2L and ZeRO-Offload give "limited improvement" over their
	// single-GPU numbers — still far below ZeRO-Infinity.
	if l2l := rowFor(rows, modelcfg.L2L); l2l.MaxB >= zi.MaxB {
		t.Errorf("L2L (%.1fB) should trail ZeRO-Infinity (%.1fB)", l2l.MaxB, zi.MaxB)
	}
}

func TestFigure1aSubset(t *testing.T) {
	rows := Figure1a()
	if len(rows) != 4 {
		t.Fatalf("want 4 motivation methods, got %d", len(rows))
	}
	nvme := rowFor(rows, modelcfg.ZeROInfinityNVMe)
	cpu := rowFor(rows, modelcfg.ZeROInfinity)
	if nvme.MaxB <= cpu.MaxB {
		t.Fatal("NVMe tier must raise ZeRO-Infinity's capacity")
	}
}

func TestFigure7aShape(t *testing.T) {
	rows := Figure7a()
	get := func(m modelcfg.Method) ThroughputRow {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		return ThroughputRow{}
	}
	sh := get(modelcfg.Stronghold)
	if sh.TFLOPS < 4 || sh.TFLOPS > 10 {
		t.Errorf("STRONGHOLD TFLOPS %.2f, paper 6–9", sh.TFLOPS)
	}
	for _, m := range []modelcfg.Method{modelcfg.L2L, modelcfg.ZeROOffload, modelcfg.ZeROInfinity} {
		r := get(m)
		if r.TFLOPS >= sh.TFLOPS {
			t.Errorf("%s TFLOPS %.2f should trail STRONGHOLD %.2f", m, r.TFLOPS, sh.TFLOPS)
		}
	}
	// The paper's strongest quantitative claim: SH's TFLOPS far exceeds
	// ZeRO-Offload (0.59) and ZeRO-Infinity (0.53) at their largest
	// models.
	if zo := get(modelcfg.ZeROOffload); sh.TFLOPS/zo.TFLOPS < 3 {
		t.Errorf("SH/ZeRO-Offload TFLOPS ratio %.1f, paper ≈12x", sh.TFLOPS/zo.TFLOPS)
	}
}

func TestFigure8aShape(t *testing.T) {
	rows := Figure8a()
	get := func(m modelcfg.Method) RelThroughputRow {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		return RelThroughputRow{}
	}
	if r := get(modelcfg.L2L); r.RelMegatron < 0.12 || r.RelMegatron > 0.35 {
		t.Errorf("L2L at %.0f%% of Megatron, paper 22%%", r.RelMegatron*100)
	}
	if r := get(modelcfg.ZeROOffload); r.RelMegatron >= 0.60 {
		t.Errorf("ZeRO-Offload at %.0f%%, paper <57%%", r.RelMegatron*100)
	}
	if r := get(modelcfg.ZeROInfinity); r.RelMegatron >= 0.60 {
		t.Errorf("ZeRO-Infinity at %.0f%%, paper <57%%", r.RelMegatron*100)
	}
	// "STRONGHOLD is the only offloading solution that gives an
	// improvement over Megatron-LM."
	if r := get(modelcfg.Stronghold); r.RelMegatron <= 1.0 {
		t.Errorf("STRONGHOLD at %.0f%% of Megatron, paper >100%%", r.RelMegatron*100)
	}
}

func TestFigure8bLinearScaling(t *testing.T) {
	rows := Figure8b()
	if len(rows) < 5 {
		t.Fatalf("want ≥5 scaling points, got %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.DeviationPc) > 15 {
			t.Errorf("%.1fB deviates %.1f%% from linear; paper shows near-linear scaling", r.SizeB, r.DeviationPc)
		}
	}
	// Iteration time must be monotone in size.
	for i := 1; i < len(rows); i++ {
		if rows[i].IterSec <= rows[i-1].IterSec {
			t.Fatalf("iteration time not monotone at %.1fB", rows[i].SizeB)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, solved, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if solved < 1 {
		t.Fatalf("solver picked %d", solved)
	}
	// Throughput at the smallest window must trail the plateau; the
	// plateau (largest windows) must be flat within 3%.
	first, last := rows[0], rows[len(rows)-1]
	if first.Small1p7SPS >= last.Small1p7SPS {
		t.Fatalf("window 1 (%.3f) should trail window %d (%.3f)",
			first.Small1p7SPS, last.Window, last.Small1p7SPS)
	}
	var plateau []WindowRow
	for _, r := range rows {
		if r.Window >= solved {
			plateau = append(plateau, r)
		}
	}
	for _, r := range plateau {
		if math.Abs(r.Small1p7SPS-last.Small1p7SPS)/last.Small1p7SPS > 0.03 {
			t.Errorf("window %d off the plateau: %.3f vs %.3f", r.Window, r.Small1p7SPS, last.Small1p7SPS)
		}
	}
	// The solver's window must sit on the plateau (within 3% of the
	// best observed throughput) — the paper's "automatically determines"
	// claim.
	var atSolved, best float64
	for _, r := range rows {
		if r.SolverChoice {
			atSolved = r.Small1p7SPS
		}
		if r.Small1p7SPS > best {
			best = r.Small1p7SPS
		}
	}
	if atSolved < best*0.97 {
		t.Errorf("solver window throughput %.3f below plateau best %.3f", atSolved, best)
	}
}

func TestFigure4Overlap(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlap < 0.85 {
		t.Errorf("overlap %.2f; the paper's trace shows communication largely hidden", r.Overlap)
	}
	if r.Trace.Len() == 0 || len(r.ChromeJSON) == 0 {
		t.Fatal("trace must be recorded and exportable")
	}
	if r.Window < 1 {
		t.Fatal("window must be solved")
	}
}

func TestFigure10NVMeSpeedup(t *testing.T) {
	rows := Figure10()
	if len(rows) == 0 {
		t.Fatal("no NVMe rows")
	}
	for _, r := range rows {
		if r.ShSPS == 0 {
			t.Errorf("STRONGHOLD NVMe failed at %.0fB", r.SizeB)
			continue
		}
		if r.SpeedupOver < 5 {
			t.Errorf("%.0fB: SH/ZI speedup %.1fx, paper >8x", r.SizeB, r.SpeedupOver)
		}
	}
}

func TestFigure11MultiStream(t *testing.T) {
	rows := Figure11()
	if len(rows) != 4 {
		t.Fatalf("want 4 batch sizes, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1.3 || r.Speedup > 2.6 {
			t.Errorf("bs=%d speedup %.2fx; paper range 1.7–2.1x", r.BatchSize, r.Speedup)
		}
		if r.Streams < 2 {
			t.Errorf("bs=%d picked %d streams; the optimization should engage", r.BatchSize, r.Streams)
		}
	}
}

func TestFigure12Distributed(t *testing.T) {
	rows := Figure12()
	var sh, z2 DistRow
	for _, r := range rows {
		switch r.Method {
		case modelcfg.Stronghold:
			sh = r
		case modelcfg.ZeRO2:
			z2 = r
		}
	}
	if z2.SamplesPerSec <= 0 {
		t.Fatal("ZeRO-2 must run")
	}
	if sh.RelZeRO2 < 2.0 {
		t.Errorf("STRONGHOLD %.2fx over ZeRO-2, paper ≥2.6x", sh.RelZeRO2)
	}
}

func TestFigure13Inference(t *testing.T) {
	rows := Figure13()
	sawPTOOM := false
	for _, r := range rows {
		if r.ShOOM {
			t.Errorf("STRONGHOLD inference OOM at %.1fB", r.SizeB)
		}
		if r.PyTorchOOM {
			sawPTOOM = true
		}
	}
	if !sawPTOOM {
		t.Fatal("PyTorch must OOM somewhere in the sweep")
	}
	// Small-model latency parity (within 30%).
	small := rows[0]
	if small.PyTorchOOM {
		t.Fatal("1.7B resident inference must fit")
	}
	if small.ShSec > small.PyTorchSec*1.3 {
		t.Errorf("1.7B: SH %.2fs vs PyTorch %.2fs; paper reports parity", small.ShSec, small.PyTorchSec)
	}
	// Linear scaling across the STRONGHOLD series.
	last := rows[len(rows)-1]
	scale := last.ShSec / small.ShSec
	sizeScale := last.SizeB / small.SizeB
	if scale < sizeScale*0.6 || scale > sizeScale*1.6 {
		t.Errorf("inference scaling %.1fx for %.1fx size", scale, sizeScale)
	}
}

func TestFigure14Ablation(t *testing.T) {
	rows := Figure14()
	if len(rows) != 3 {
		t.Fatalf("want 3 optimizations, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1.05 {
			t.Errorf("%s speedup %.2fx: every optimization must help", r.Optimization, r.Speedup)
		}
		// Shape: within a factor 1.6 of the paper's bar.
		if r.Speedup < r.PaperSpeedup/1.6 || r.Speedup > r.PaperSpeedup*1.6 {
			t.Errorf("%s speedup %.2fx vs paper %.1fx (outside 1.6x band)",
				r.Optimization, r.Speedup, r.PaperSpeedup)
		}
	}
}

func TestCommVolumeRows(t *testing.T) {
	rows := CommVolume()
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	// Ratio grows with batch size at fixed shape.
	if !(rows[0].Ratio < rows[1].Ratio && rows[1].Ratio < rows[2].Ratio) {
		t.Fatalf("Vmp/Vdp must grow with batch: %v %v %v", rows[0].Ratio, rows[1].Ratio, rows[2].Ratio)
	}
}

func TestRenderers(t *testing.T) {
	// Every renderer must produce non-empty, multi-line output.
	outputs := []string{
		RenderSizeRows("Fig 6a", Figure6a()),
		RenderRelRows("Fig 8a", Figure8a()),
		RenderScalingRows("Fig 8b", Figure8b()),
		RenderStreamRows(Figure11()),
		RenderDistRows(Figure12()),
		RenderCommVolumeRows(CommVolume()),
		RenderInferRows(Figure13()),
		RenderAblationRows(Figure14()),
		RenderNVMeRows(Figure10()),
		RenderTableI(TableIRows()),
	}
	rows, solved, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	outputs = append(outputs, RenderWindowRows(rows, solved))
	tp := Figure7a()
	outputs = append(outputs, RenderThroughputRows("Fig 7a", tp))
	for i, o := range outputs {
		if len(strings.Split(o, "\n")) < 3 {
			t.Fatalf("renderer %d produced %q", i, o)
		}
	}
}

func TestVarianceProtocol(t *testing.T) {
	r := Variance(10)
	if r.Runs != 10 || r.GeoMeanSPS <= 0 {
		t.Fatalf("bad report %+v", r)
	}
	if !r.Deterministic || r.MaxDeviationP != 0 {
		t.Fatalf("simulator must be deterministic: %+v", r)
	}
	// The paper's bound holds trivially.
	if r.MaxDeviationP >= 3 {
		t.Fatal("variance exceeds the paper's <3% bound")
	}
}

func TestJitterStudyRetentionImprovesWithWindow(t *testing.T) {
	rows := JitterStudy(3)
	if len(rows) != 4 {
		t.Fatalf("want 4 windows, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Retention < rows[i-1].Retention-1e-9 {
			t.Fatalf("retention must be non-decreasing with window: %+v", rows)
		}
	}
	if rows[0].Retention > 0.95 {
		t.Fatalf("window 1 should visibly suffer under 3x jitter: %.3f", rows[0].Retention)
	}
	if rows[len(rows)-1].Retention < 0.97 {
		t.Fatalf("deep windows should absorb the jitter: %.3f", rows[len(rows)-1].Retention)
	}
}

func TestHeteroWindowStudySavesMemory(t *testing.T) {
	rows, err := HeteroWindowStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 strategies, got %d", len(rows))
	}
	fixedCount, fixedBudget := rows[0], rows[1]
	if !fixedCount.HidesXfers || !fixedBudget.HidesXfers {
		t.Fatalf("both strategies must hide transfers: %+v", rows)
	}
	// The §III-D claim: the fixed-budget mode needs less device memory
	// on heterogeneous layers.
	if fixedBudget.GPUBytes >= fixedCount.GPUBytes {
		t.Fatalf("fixed budget (%d) should undercut fixed count (%d)",
			fixedBudget.GPUBytes, fixedCount.GPUBytes)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"aa", "b"}, []float64{10, 5}, 20, "%.0f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "title" {
		t.Fatalf("chart structure wrong: %q", out)
	}
	// The larger value fills the width; the smaller fills half.
	if strings.Count(lines[1], "#") != 20 || strings.Count(lines[2], "#") != 10 {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
	if BarChart("t", nil, nil, 10, "%f") != "t\n(no data)\n" {
		t.Fatal("empty chart")
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart("t", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, 16, 4)
	if strings.Count(out, "*") != 4 {
		t.Fatalf("want 4 marks:\n%s", out)
	}
	// Monotone series: first mark on the bottom row, last on the top.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], "*") {
		t.Fatalf("top row missing mark:\n%s", out)
	}
	if LineChart("t", nil, nil, 10, 4) != "t\n(no data)\n" {
		t.Fatal("empty chart")
	}
	// Flat series must not divide by zero.
	flat := LineChart("t", []float64{1, 2}, []float64{5, 5}, 16, 4)
	if !strings.Contains(flat, "*") {
		t.Fatal("flat series must render")
	}
}

func TestFigureCharts(t *testing.T) {
	rows, solved, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if c := ChartFigure9(rows, solved); !strings.Contains(c, "*") {
		t.Fatal("figure 9 chart empty")
	}
	if c := ChartFigure6a(Figure6a()); !strings.Contains(c, "#") {
		t.Fatal("figure 6a chart empty")
	}
	if c := ChartFigure8a(Figure8a()); !strings.Contains(c, "#") {
		t.Fatal("figure 8a chart empty")
	}
}
