// Package maputil holds the tiny deterministic-iteration helpers the
// simulator packages share. Go map ranges are randomized; any map walk
// whose side effects can reach the simulation (allocator traffic, span
// emission, signal wiring) must go through SortedKeys so two runs of
// the same configuration stay byte-identical — the invariant
// stronghold-vet's maporder rule enforces.
package maputil

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. A nil map yields an
// empty slice.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
