// Package data generates deterministic synthetic token streams standing
// in for the paper's Wikipedia corpus. Throughput experiments never
// inspect token content — only tensor shapes — so a hash-derived stream
// preserves everything the evaluation measures while keeping runs
// reproducible.
package data

import (
	"fmt"

	"stronghold/internal/tensor"
)

// Batch is one training micro-batch: input ids and next-token targets,
// both [batch, seq] tensors of integral values.
type Batch struct {
	Inputs  *tensor.Tensor
	Targets *tensor.Tensor
}

// Loader produces an endless deterministic stream of batches.
type Loader struct {
	Vocab     int
	BatchSize int
	SeqLen    int
	rng       *tensor.RNG
	step      int
}

// NewLoader builds a loader; identical (vocab, batch, seq, seed) yield
// identical streams.
func NewLoader(vocab, batchSize, seqLen int, seed uint64) (*Loader, error) {
	if vocab < 2 {
		return nil, fmt.Errorf("data: vocab %d too small", vocab)
	}
	if batchSize <= 0 || seqLen <= 0 {
		return nil, fmt.Errorf("data: non-positive batch %d or seq %d", batchSize, seqLen)
	}
	return &Loader{Vocab: vocab, BatchSize: batchSize, SeqLen: seqLen, rng: tensor.NewRNG(seed)}, nil
}

// Next returns the next batch. Targets are the inputs shifted left by
// one with a fresh token in the final slot — the standard LM objective.
func (l *Loader) Next() Batch {
	l.step++
	n := l.BatchSize * l.SeqLen
	in := tensor.New(l.BatchSize, l.SeqLen)
	tgt := tensor.New(l.BatchSize, l.SeqLen)
	ids := make([]int, n+l.BatchSize)
	for i := range ids {
		ids[i] = l.rng.Intn(l.Vocab)
	}
	for b := 0; b < l.BatchSize; b++ {
		for s := 0; s < l.SeqLen; s++ {
			in.Set(float32(ids[b*(l.SeqLen+1)+s]), b, s)
			tgt.Set(float32(ids[b*(l.SeqLen+1)+s+1]), b, s)
		}
	}
	return Batch{Inputs: in, Targets: tgt}
}

// Step returns how many batches have been produced.
func (l *Loader) Step() int { return l.step }
