package data

import "testing"

func TestLoaderValidation(t *testing.T) {
	if _, err := NewLoader(1, 2, 4, 0); err == nil {
		t.Fatal("vocab 1 must be rejected")
	}
	if _, err := NewLoader(10, 0, 4, 0); err == nil {
		t.Fatal("batch 0 must be rejected")
	}
	if _, err := NewLoader(10, 2, 0, 0); err == nil {
		t.Fatal("seq 0 must be rejected")
	}
}

func TestLoaderShapesAndRange(t *testing.T) {
	l, err := NewLoader(32, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	if b.Inputs.Dim(0) != 3 || b.Inputs.Dim(1) != 5 {
		t.Fatalf("input shape %v", b.Inputs.Shape())
	}
	if b.Targets.Dim(0) != 3 || b.Targets.Dim(1) != 5 {
		t.Fatalf("target shape %v", b.Targets.Shape())
	}
	for _, v := range b.Inputs.Data() {
		if v != float32(int(v)) || v < 0 || v >= 32 {
			t.Fatalf("non-integral or out-of-range token %v", v)
		}
	}
}

func TestLoaderTargetsAreShiftedInputs(t *testing.T) {
	l, _ := NewLoader(100, 2, 6, 7)
	b := l.Next()
	for bi := 0; bi < 2; bi++ {
		for s := 0; s < 5; s++ {
			if b.Targets.At(bi, s) != b.Inputs.At(bi, s+1) {
				t.Fatalf("target (%d,%d) not shifted input", bi, s)
			}
		}
	}
}

func TestLoaderDeterminism(t *testing.T) {
	l1, _ := NewLoader(50, 2, 4, 9)
	l2, _ := NewLoader(50, 2, 4, 9)
	for i := 0; i < 3; i++ {
		b1, b2 := l1.Next(), l2.Next()
		if !b1.Inputs.Equal(b2.Inputs) || !b1.Targets.Equal(b2.Targets) {
			t.Fatalf("batch %d differs across identical seeds", i)
		}
	}
	l3, _ := NewLoader(50, 2, 4, 10)
	if l3.Next().Inputs.Equal(l1.Next().Inputs) {
		t.Fatal("different seeds should produce different streams")
	}
	if l1.Step() != 4 {
		t.Fatalf("Step = %d, want 4", l1.Step())
	}
}

func TestLoaderSuccessiveBatchesDiffer(t *testing.T) {
	l, _ := NewLoader(50, 2, 8, 11)
	if l.Next().Inputs.Equal(l.Next().Inputs) {
		t.Fatal("successive batches should differ")
	}
}

func TestTextLoaderValidation(t *testing.T) {
	if _, err := NewTextLoader("hi", 2, 8, 1); err == nil {
		t.Fatal("tiny corpus must be rejected")
	}
	if _, err := NewTextLoader("plenty of text here for training", 0, 4, 1); err == nil {
		t.Fatal("zero batch must be rejected")
	}
}

func TestTextLoaderWindows(t *testing.T) {
	corpus := "the quick brown fox jumps over the lazy dog"
	l, err := NewTextLoader(corpus, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	if b.Inputs.Dim(0) != 3 || b.Inputs.Dim(1) != 8 {
		t.Fatalf("shape %v", b.Inputs.Shape())
	}
	// Targets shift inputs by one, and every token is a corpus byte.
	for r := 0; r < 3; r++ {
		for s := 0; s < 7; s++ {
			if b.Targets.At(r, s) != b.Inputs.At(r, s+1) {
				t.Fatal("targets must shift inputs")
			}
		}
		for s := 0; s < 8; s++ {
			v := int(b.Inputs.At(r, s))
			if v < 0 || v >= TextVocab {
				t.Fatalf("byte %d out of range", v)
			}
		}
	}
}

func TestTextLoaderDeterministic(t *testing.T) {
	corpus := "determinism is a feature of this simulator throughout"
	a, _ := NewTextLoader(corpus, 2, 8, 7)
	b, _ := NewTextLoader(corpus, 2, 8, 7)
	if !a.Next().Inputs.Equal(b.Next().Inputs) {
		t.Fatal("same seed must repeat")
	}
}
