package data

import (
	"fmt"

	"stronghold/internal/tensor"
)

// TextVocab is the byte-level vocabulary size.
const TextVocab = 256

// TextLoader produces language-model batches from a real text corpus
// with byte-level tokenization — the offline stand-in for the paper's
// Wikipedia dump when actual text (rather than synthetic tokens) is
// wanted in the functional path.
type TextLoader struct {
	corpus    []byte
	BatchSize int
	SeqLen    int
	rng       *tensor.RNG
}

// NewTextLoader wraps a corpus. It needs at least SeqLen+1 bytes to cut
// one training window.
func NewTextLoader(text string, batchSize, seqLen int, seed uint64) (*TextLoader, error) {
	if batchSize <= 0 || seqLen <= 0 {
		return nil, fmt.Errorf("data: non-positive batch %d or seq %d", batchSize, seqLen)
	}
	if len(text) < seqLen+2 {
		return nil, fmt.Errorf("data: corpus of %d bytes too small for seq %d", len(text), seqLen)
	}
	return &TextLoader{
		corpus: []byte(text), BatchSize: batchSize, SeqLen: seqLen,
		rng: tensor.NewRNG(seed),
	}, nil
}

// Next cuts BatchSize random windows from the corpus; targets are the
// inputs shifted by one byte.
func (l *TextLoader) Next() Batch {
	in := tensor.New(l.BatchSize, l.SeqLen)
	tgt := tensor.New(l.BatchSize, l.SeqLen)
	maxStart := len(l.corpus) - l.SeqLen - 1
	for b := 0; b < l.BatchSize; b++ {
		start := l.rng.Intn(maxStart + 1)
		for s := 0; s < l.SeqLen; s++ {
			in.Set(float32(l.corpus[start+s]), b, s)
			tgt.Set(float32(l.corpus[start+s+1]), b, s)
		}
	}
	return Batch{Inputs: in, Targets: tgt}
}
