// Package autograd implements a tape-based reverse-mode automatic
// differentiation engine over the tensor package, mirroring the subset
// of PyTorch semantics STRONGHOLD relies on: parameters with accumulated
// gradients, a backward tape, and — crucially — the four layer-level
// hook points (pre/post forward, pre/post backward) that the STRONGHOLD
// runtime uses to drive prefetch and offload without touching user code.
package autograd

import (
	"fmt"

	"stronghold/internal/tensor"
)

// Parameter is a trainable tensor with an accumulated gradient.
type Parameter struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParameter wraps v as a named trainable parameter with a
// zero-initialized gradient buffer.
func NewParameter(name string, v *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// AccumulateGrad adds g into the parameter's gradient buffer.
func (p *Parameter) AccumulateGrad(g *tensor.Tensor) {
	if g.Size() != p.Grad.Size() {
		panic(fmt.Sprintf("autograd: gradient size mismatch for %s: %d vs %d", p.Name, g.Size(), p.Grad.Size()))
	}
	p.Grad.AddScaled(1, g)
}

// NumParams returns the number of scalar elements in the parameter.
func (p *Parameter) NumParams() int { return p.Value.Size() }

// Bytes returns the storage footprint of value+grad in bytes.
func (p *Parameter) Bytes() int64 { return p.Value.Bytes() + p.Grad.Bytes() }

// Module is the unit the STRONGHOLD runtime offloads: a layer with
// parameters, a forward pass, and a backward pass. Backward receives the
// gradient of the loss w.r.t. the module output and must return the
// gradient w.r.t. the module input, accumulating parameter gradients as
// a side effect.
type Module interface {
	// Name identifies the module in traces and parameter lists.
	Name() string
	// Parameters returns the module's trainable parameters.
	Parameters() []*Parameter
	// Forward runs the layer, caching whatever Backward will need.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes the upstream gradient and returns the input
	// gradient. It must be called after Forward in the same iteration.
	Backward(dout *tensor.Tensor) *tensor.Tensor
}

// HookKind enumerates the interception points the engine exposes —
// identical to the PyTorch hooks named in the paper (§III-C).
type HookKind int

const (
	PreForward HookKind = iota
	PostForward
	PreBackward
	PostBackward
)

// String returns the hook point's PyTorch-style name.
func (k HookKind) String() string {
	switch k {
	case PreForward:
		return "pre_forward"
	case PostForward:
		return "post_forward"
	case PreBackward:
		return "pre_backward"
	case PostBackward:
		return "post_backward"
	}
	return fmt.Sprintf("HookKind(%d)", int(k))
}

// Hook is a callback fired around a module's forward or backward
// execution. layerIdx is the index of the module within the Sequential
// that fired the hook.
type Hook func(kind HookKind, layerIdx int, m Module)

// Sequential chains modules in execution order — the "stack of
// Transformer blocks" structure of Figure 3a. It fires registered hooks
// around every layer in both directions; the STRONGHOLD runtime attaches
// its prefetch/offload logic here, leaving user model code untouched.
type Sequential struct {
	layers []Module
	hooks  []Hook
	// checkpointEvery > 0 enables activation checkpointing: only every
	// k-th layer boundary activation is kept during the forward pass and
	// intermediate activations are recomputed during backward.
	checkpointEvery int
	// caches for the backward pass
	inputs []*tensor.Tensor
}

// NewSequential builds a sequential container over layers.
func NewSequential(layers ...Module) *Sequential {
	return &Sequential{layers: layers}
}

// Name implements Module.
func (s *Sequential) Name() string { return "sequential" }

// Layers returns the contained modules in execution order.
func (s *Sequential) Layers() []Module { return s.layers }

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Parameters returns all parameters of all layers in order.
func (s *Sequential) Parameters() []*Parameter {
	var ps []*Parameter
	for _, l := range s.layers {
		ps = append(ps, l.Parameters()...)
	}
	return ps
}

// RegisterHook attaches h to every layer boundary. Multiple hooks fire
// in registration order.
func (s *Sequential) RegisterHook(h Hook) { s.hooks = append(s.hooks, h) }

// ClearHooks removes all registered hooks.
func (s *Sequential) ClearHooks() { s.hooks = nil }

// SetActivationCheckpointing enables layer-wise activation checkpointing
// with the given interval (0 disables). The paper uses layer-wise
// checkpointing (interval 1) in all evaluations (§V-D); with interval k
// only every k-th boundary activation is retained and the rest are
// recomputed during backward, so t_bp includes the FP recomputation time
// (paper footnote 2).
func (s *Sequential) SetActivationCheckpointing(every int) {
	if every < 0 {
		panic("autograd: negative checkpoint interval")
	}
	s.checkpointEvery = every
}

// CheckpointInterval returns the current checkpoint interval (0 when
// checkpointing is disabled).
func (s *Sequential) CheckpointInterval() int { return s.checkpointEvery }

func (s *Sequential) fire(kind HookKind, idx int, m Module) {
	for _, h := range s.hooks {
		h(kind, idx, m)
	}
}

// Forward runs all layers in order, firing pre/post forward hooks, and
// caching boundary activations for the backward pass (all of them, or
// only checkpoints when checkpointing is enabled).
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	s.inputs = make([]*tensor.Tensor, len(s.layers))
	for i, l := range s.layers {
		s.fire(PreForward, i, l)
		if s.keepActivation(i) {
			s.inputs[i] = x
		}
		x = l.Forward(x)
		s.fire(PostForward, i, l)
	}
	return x
}

func (s *Sequential) keepActivation(i int) bool {
	if s.checkpointEvery == 0 {
		return true
	}
	return i%s.checkpointEvery == 0
}

// Backward propagates dout through the layers in reverse, firing
// pre/post backward hooks, recomputing dropped activations from the
// nearest checkpoint when checkpointing is enabled, and returning the
// gradient w.r.t. the original input.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if s.inputs == nil {
		panic("autograd: Backward called before Forward")
	}
	for i := len(s.layers) - 1; i >= 0; i-- {
		l := s.layers[i]
		s.fire(PreBackward, i, l)
		if s.inputs[i] == nil {
			s.recompute(i)
		}
		// Re-run forward for this layer to restore its internal caches
		// when checkpointing dropped them. With checkpointing enabled
		// the layer's caches currently hold the *last* forward state,
		// so replay from the stored boundary input.
		if s.checkpointEvery != 0 {
			l.Forward(s.inputs[i])
		}
		dout = l.Backward(dout)
		s.fire(PostBackward, i, l)
	}
	s.inputs = nil
	return dout
}

// recompute restores the boundary activation feeding layer i by
// replaying forward from the nearest retained checkpoint.
func (s *Sequential) recompute(i int) {
	j := i
	for j >= 0 && s.inputs[j] == nil {
		j--
	}
	if j < 0 {
		panic("autograd: no checkpoint found during recompute")
	}
	x := s.inputs[j]
	for ; j < i; j++ {
		x = s.layers[j].Forward(x)
		s.inputs[j+1] = x
	}
}

// ZeroGrad clears gradients of every parameter in the container.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Parameters() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count.
func (s *Sequential) NumParams() int64 {
	var n int64
	for _, p := range s.Parameters() {
		n += int64(p.NumParams())
	}
	return n
}
