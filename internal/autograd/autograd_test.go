package autograd

import (
	"math"
	"testing"

	"stronghold/internal/tensor"
)

// scaleModule multiplies its input by a scalar parameter; simple enough
// that gradients are known in closed form: y = a*x, dy/dx = a,
// dy/da = sum(x*dout).
type scaleModule struct {
	name  string
	a     *Parameter
	cache *tensor.Tensor
	// forwardCount records how many times Forward ran (to observe
	// checkpoint recomputation).
	forwardCount int
}

func newScale(name string, a float32) *scaleModule {
	return &scaleModule{name: name, a: NewParameter(name+".a", tensor.Full(a, 1))}
}

func (m *scaleModule) Name() string             { return m.name }
func (m *scaleModule) Parameters() []*Parameter { return []*Parameter{m.a} }

func (m *scaleModule) Forward(x *tensor.Tensor) *tensor.Tensor {
	m.forwardCount++
	m.cache = x
	return tensor.Scale(m.a.Value.Data()[0], x)
}

func (m *scaleModule) Backward(dout *tensor.Tensor) *tensor.Tensor {
	var da float64
	for i := range dout.Data() {
		da += float64(dout.Data()[i]) * float64(m.cache.Data()[i])
	}
	g := tensor.Full(float32(da), 1)
	m.a.AccumulateGrad(g)
	return tensor.Scale(m.a.Value.Data()[0], dout)
}

func TestParameterAccumulateAndZero(t *testing.T) {
	p := NewParameter("w", tensor.Full(1, 3))
	p.AccumulateGrad(tensor.Full(2, 3))
	p.AccumulateGrad(tensor.Full(3, 3))
	if p.Grad.Data()[0] != 5 {
		t.Fatalf("grad = %v, want 5", p.Grad.Data()[0])
	}
	p.ZeroGrad()
	if p.Grad.Data()[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
	if p.NumParams() != 3 || p.Bytes() != 24 {
		t.Fatalf("NumParams=%d Bytes=%d", p.NumParams(), p.Bytes())
	}
}

func TestAccumulateGradSizeMismatchPanics(t *testing.T) {
	p := NewParameter("w", tensor.Full(1, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.AccumulateGrad(tensor.Full(1, 2))
}

func TestSequentialForwardBackwardChainRule(t *testing.T) {
	// y = 3 * 2 * x; dy/dx = 6; da1 = sum(dout * 2x) etc.
	s := NewSequential(newScale("l0", 2), newScale("l1", 3))
	x := tensor.FromSlice([]float32{1, 2}, 2)
	y := s.Forward(x)
	if y.Data()[0] != 6 || y.Data()[1] != 12 {
		t.Fatalf("forward got %v", y.Data())
	}
	dout := tensor.Ones(2)
	dx := s.Backward(dout)
	if dx.Data()[0] != 6 || dx.Data()[1] != 6 {
		t.Fatalf("dx got %v, want [6 6]", dx.Data())
	}
	ps := s.Parameters()
	// dL/da1 = sum(dout * l0(x)) = 2+4 = 6; dL/da0 = sum(a1*dout * x) = 3*1+3*2 = 9.
	if ps[1].Grad.Data()[0] != 6 {
		t.Fatalf("da1 = %v, want 6", ps[1].Grad.Data()[0])
	}
	if ps[0].Grad.Data()[0] != 9 {
		t.Fatalf("da0 = %v, want 9", ps[0].Grad.Data()[0])
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	s := NewSequential(newScale("l0", 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Backward(tensor.Ones(1))
}

func TestHookSequence(t *testing.T) {
	s := NewSequential(newScale("l0", 1), newScale("l1", 1), newScale("l2", 1))
	var seq []string
	s.RegisterHook(func(kind HookKind, idx int, m Module) {
		seq = append(seq, kind.String()+":"+m.Name())
	})
	y := s.Forward(tensor.Ones(2))
	s.Backward(y)
	want := []string{
		"pre_forward:l0", "post_forward:l0",
		"pre_forward:l1", "post_forward:l1",
		"pre_forward:l2", "post_forward:l2",
		"pre_backward:l2", "post_backward:l2",
		"pre_backward:l1", "post_backward:l1",
		"pre_backward:l0", "post_backward:l0",
	}
	if len(seq) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(seq), seq, len(want))
	}
	for i, w := range want {
		if seq[i] != w {
			t.Fatalf("event %d = %q, want %q (full: %v)", i, seq[i], w, seq)
		}
	}
}

func TestMultipleHooksFireInRegistrationOrder(t *testing.T) {
	s := NewSequential(newScale("l0", 1))
	var order []int
	s.RegisterHook(func(kind HookKind, idx int, m Module) { order = append(order, 1) })
	s.RegisterHook(func(kind HookKind, idx int, m Module) { order = append(order, 2) })
	s.Forward(tensor.Ones(1))
	if len(order) < 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hook order %v", order)
	}
	s.ClearHooks()
	order = nil
	s.Forward(tensor.Ones(1))
	if len(order) != 0 {
		t.Fatal("ClearHooks did not remove hooks")
	}
}

func TestActivationCheckpointingSameGradients(t *testing.T) {
	build := func() *Sequential {
		return NewSequential(newScale("l0", 2), newScale("l1", 3), newScale("l2", 0.5), newScale("l3", 1.5))
	}
	x := tensor.FromSlice([]float32{1, -2, 3}, 3)

	ref := build()
	refY := ref.Forward(x.Clone())
	ref.Backward(tensor.Ones(3))

	ck := build()
	ck.SetActivationCheckpointing(2)
	ckY := ck.Forward(x.Clone())
	ck.Backward(tensor.Ones(3))

	if !refY.Equal(ckY) {
		t.Fatal("checkpointing changed forward output")
	}
	for i, p := range ref.Parameters() {
		if !p.Grad.Equal(ck.Parameters()[i].Grad) {
			t.Fatalf("checkpointing changed gradient of %s: %v vs %v",
				p.Name, p.Grad.Data(), ck.Parameters()[i].Grad.Data())
		}
	}
}

func TestCheckpointingRecomputesForward(t *testing.T) {
	layers := []*scaleModule{newScale("l0", 1), newScale("l1", 1), newScale("l2", 1), newScale("l3", 1)}
	s := NewSequential(layers[0], layers[1], layers[2], layers[3])
	s.SetActivationCheckpointing(2)
	s.Forward(tensor.Ones(1))
	s.Backward(tensor.Ones(1))
	// Each layer runs once in FP and once more in BP replay (layer-local
	// cache restore); non-checkpointed boundaries cost extra recompute.
	for i, l := range layers {
		if l.forwardCount < 2 {
			t.Fatalf("layer %d forward ran %d times; expected recomputation", i, l.forwardCount)
		}
	}
}

func TestNoCheckpointingSingleForward(t *testing.T) {
	layers := []*scaleModule{newScale("l0", 1), newScale("l1", 1)}
	s := NewSequential(layers[0], layers[1])
	s.Forward(tensor.Ones(1))
	s.Backward(tensor.Ones(1))
	for i, l := range layers {
		if l.forwardCount != 1 {
			t.Fatalf("layer %d forward ran %d times, want 1", i, l.forwardCount)
		}
	}
}

func TestNegativeCheckpointIntervalPanics(t *testing.T) {
	s := NewSequential(newScale("l0", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetActivationCheckpointing(-1)
}

func TestZeroGradAndNumParams(t *testing.T) {
	s := NewSequential(newScale("l0", 2), newScale("l1", 3))
	s.Forward(tensor.Ones(4))
	s.Backward(tensor.Ones(4))
	if s.Parameters()[0].Grad.Data()[0] == 0 {
		t.Fatal("expected nonzero grad")
	}
	s.ZeroGrad()
	for _, p := range s.Parameters() {
		if p.Grad.Data()[0] != 0 {
			t.Fatal("ZeroGrad missed a parameter")
		}
	}
	if s.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", s.NumParams())
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestHookKindString(t *testing.T) {
	if PreForward.String() != "pre_forward" || PostBackward.String() != "post_backward" {
		t.Fatal("hook names must match the paper's PyTorch hook names")
	}
	if HookKind(99).String() == "" {
		t.Fatal("unknown kinds should still render")
	}
}

// Gradient check of the full container against finite differences using
// the scale modules.
func TestSequentialNumericGradient(t *testing.T) {
	s := NewSequential(newScale("l0", 1.3), newScale("l1", -0.7), newScale("l2", 2.1))
	x := tensor.FromSlice([]float32{0.5, -1.5}, 2)
	loss := func() float64 {
		y := s.Forward(x.Clone())
		return y.Sum()
	}
	s.Forward(x.Clone())
	s.ZeroGrad()
	y := s.Forward(x.Clone())
	s.Backward(tensor.Ones(y.Size()))
	const h = 1e-3
	for _, p := range s.Parameters() {
		orig := p.Value.Data()[0]
		p.Value.Data()[0] = orig + h
		up := loss()
		p.Value.Data()[0] = orig - h
		dn := loss()
		p.Value.Data()[0] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(p.Grad.Data()[0])) > 1e-2 {
			t.Fatalf("%s: analytic %v vs numeric %v", p.Name, p.Grad.Data()[0], num)
		}
	}
}
