package plan

import "stronghold/internal/sim"

// Env is the execution environment a plan runs against. The executor
// owns the walk order and the dependency wiring; the environment owns
// the physics — how an op turns into simulated work. The STRONGHOLD
// engine maps ops onto hw.Machine streams, PCIe queues and the CPU
// optimizer pool; the baseline engines map them onto explicit-duration
// resources. Issue is called exactly once per op, in canonical (ID)
// order, which is what makes plan execution deterministic: two walks
// of the same plan produce identical Submit/Schedule sequences.
type Env interface {
	// Issue starts op once every signal in deps has fired and returns
	// the op's completion signal. deps holds the already-created
	// signals of op.Deps plus the resolved op.Ext entries, in that
	// order, with satisfied (nil) dependencies elided. A nil return
	// means the op completes immediately and nothing may wait on it.
	Issue(op *Op, deps []*sim.Signal) *sim.Signal
	// Resolve maps a cross-iteration dependency to the signal that
	// publishes it. Returning nil means the fact already holds.
	Resolve(d ExtDep) *sim.Signal
	// Export publishes op's completion signal as the op.Export fact
	// for op.Layer, for the next iteration (or patch) to Resolve.
	Export(op *Op, sig *sim.Signal)
}

// Execute walks one iteration's plan in canonical order and issues
// every op through env. It returns the per-op completion signals,
// indexed by op ID, so the caller can join on iteration-final ops.
func Execute(it *Iteration, env Env) []*sim.Signal {
	return executeOps(it.Ops, env)
}

func executeOps(ops []Op, env Env) []*sim.Signal {
	sigs := make([]*sim.Signal, len(ops))
	for i := range ops {
		op := &ops[i]
		deps := make([]*sim.Signal, 0, len(op.Deps)+len(op.Ext))
		for _, d := range op.Deps {
			if s := sigs[d]; s != nil {
				deps = append(deps, s)
			}
		}
		for _, x := range op.Ext {
			if s := env.Resolve(x); s != nil {
				deps = append(deps, s)
			}
		}
		sig := env.Issue(op, deps)
		sigs[i] = sig
		if op.Export != 0 {
			env.Export(op, sig)
		}
	}
	return sigs
}
