package plan

import (
	"fmt"
	"strings"
)

// Validate checks a plan's scheduling invariants on the IR, before any
// simulation:
//
//  1. well-formed dependency structure: sequential IDs, every edge
//     pointing at an earlier op (which also excludes cycles — the op
//     list is the canonical topological order the executor issues in);
//  2. buffer discipline: every acquire has a matching release, every
//     release closes an epoch opened by an acquire (or by entry
//     residency), and the plan ends holding exactly the declared exit
//     set;
//  3. residency before use: every layer-tagged compute happens-after
//     the acquire that made the layer resident (entry-resident layers
//     are exempt), through explicit edges or same-queue FIFO order;
//  4. window ceiling: under every admissible event timing the number
//     of layers holding device buffers stays within the slot budget;
//  5. NVMe ring discipline (RingSlots > 0): restages open ring epochs,
//     spills close them, prefetches only read staged layers, and the
//     ring occupancy stays within RingSlots under every timing;
//  6. fractional optimizer placement (Frac-tagged ops): each layer's
//     fractional OptSteps partition the update (fractions sum to 1,
//     no mixing with whole-layer steps), and Frac-tagged moment-chunk
//     transfers stay within the OptSlots staging budget.
//
// A nil error means the executor cannot hit the engine's
// buffer-invariant error on this plan. Violations are aggregated so a
// broken plan reports every problem at once.
func Validate(it *Iteration) error {
	v := &validator{it: it}
	v.checkStructure()
	if len(v.errs) == 0 {
		v.computeReach()
		v.checkBuffers()
		v.checkResidency()
		v.checkBudget()
		v.checkNVMeRing()
		v.checkFrac()
		v.checkOptSlots()
	}
	if len(v.errs) == 0 {
		return nil
	}
	return fmt.Errorf("plan: %d invariant violation(s):\n  %s", len(v.errs), strings.Join(v.errs, "\n  "))
}

type validator struct {
	it   *Iteration
	errs []string
	// reach[i] is the transitive happens-before set of op i (explicit
	// deps plus same-queue FIFO edges), as a bitset over op IDs.
	reach []bitset
}

func (v *validator) failf(op *Op, format string, args ...any) {
	prefix := ""
	if op != nil {
		prefix = fmt.Sprintf("op %d (%s %q): ", op.ID, op.Kind, op.Name)
	}
	v.errs = append(v.errs, prefix+fmt.Sprintf(format, args...))
}

// checkStructure validates IDs, edge direction (no cycles), queue and
// layer ranges, and external-dependency sanity.
func (v *validator) checkStructure() {
	it := v.it
	entry := make(map[int]bool, len(it.EntryResident))
	for _, l := range it.EntryResident {
		entry[l] = true
	}
	for i := range it.Ops {
		op := &it.Ops[i]
		if op.ID != ID(i) {
			v.failf(op, "ID out of sequence at position %d", i)
			return // later checks index by ID
		}
		for _, d := range op.Deps {
			if d < 0 || int(d) >= len(it.Ops) {
				v.failf(op, "dependency %d outside the plan", d)
			} else if d >= op.ID {
				v.failf(op, "dependency %d does not precede it: dependency cycle or non-topological op order", d)
			}
		}
		switch op.Kind {
		case ComputeFP, ComputeBP:
			if op.Queue < 0 || op.Queue >= it.Queues {
				v.failf(op, "queue %d outside [0,%d)", op.Queue, it.Queues)
			}
		case OptStep:
			if op.GPU && (op.Queue < 0 || op.Queue >= it.Queues) {
				v.failf(op, "GPU queue %d outside [0,%d)", op.Queue, it.Queues)
			}
		case Prefetch, Offload, NVMeStage, BufAcquire, BufRelease:
			if op.Layer < 0 || op.Layer >= it.Layers {
				v.failf(op, "layer %d outside [0,%d)", op.Layer, it.Layers)
			}
		case Join:
			// A join carries no work of its own; layer -1 (model-level)
			// is legal, as is a layer tag for per-layer joins.
			if op.Layer >= it.Layers {
				v.failf(op, "layer %d outside [-1,%d)", op.Layer, it.Layers)
			}
		default:
			v.failf(op, "invalid kind %d", op.Kind)
		}
		if op.Frac != 0 {
			if op.Frac < 0 || op.Frac > 1 {
				v.failf(op, "fraction %g outside (0,1]", op.Frac)
			}
			switch op.Kind {
			case OptStep, Prefetch, Offload:
			default:
				v.failf(op, "fraction on a %s op (only opt-step and moment-chunk transfers carry fractions)", op.Kind)
			}
		}
		for _, x := range op.Ext {
			if x.Layer < 0 || x.Layer >= it.Layers {
				v.failf(op, "external dependency %s on layer %d outside [0,%d)", x.Kind, x.Layer, it.Layers)
			}
			if x.Kind == ExtResident && !entry[x.Layer] {
				v.failf(op, "resident dependency on layer %d, which is not entry-resident", x.Layer)
			}
		}
	}
}

// bitset over op IDs.
type bitset []uint64

func (b bitset) set(i ID)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i ID) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// computeReach builds each op's happens-before closure: explicit
// dependencies plus the implicit FIFO edge between consecutive ops on
// the same execution queue (streams launch in issue order).
func (v *validator) computeReach() {
	it := v.it
	words := (len(it.Ops) + 63) / 64
	v.reach = make([]bitset, len(it.Ops))
	queueTail := make([]ID, it.Queues)
	for q := range queueTail {
		queueTail[q] = -1
	}
	for i := range it.Ops {
		op := &it.Ops[i]
		r := make(bitset, words)
		add := func(d ID) {
			r.set(d)
			r.or(v.reach[d])
		}
		for _, d := range op.Deps {
			add(d)
		}
		if onQueue(op) {
			if t := queueTail[op.Queue]; t >= 0 {
				add(t)
			}
			queueTail[op.Queue] = op.ID
		}
		v.reach[i] = r
	}
}

// onQueue reports whether the op occupies a FIFO execution queue.
func onQueue(op *Op) bool {
	return op.Kind == ComputeFP || op.Kind == ComputeBP || (op.Kind == OptStep && op.GPU)
}

// happensBefore reports whether a is in b's dependency closure.
func (v *validator) happensBefore(a, b ID) bool { return v.reach[b].has(a) }

// firedBefore reports whether op a has provably completed by the time
// op b issues. Beyond plain closure membership, a zero-duration
// bookkeeping op (BufRelease/BufAcquire/Join) fires synchronously with
// its last dependency, so it has fired by b's issue whenever all its
// dependencies are in b's closure.
func (v *validator) firedBefore(a, b ID) bool {
	if v.happensBefore(a, b) {
		return true
	}
	op := &v.it.Ops[a]
	if op.Kind != BufRelease && op.Kind != BufAcquire && op.Kind != Join {
		return false
	}
	if len(op.Deps) == 0 || len(op.Ext) > 0 {
		return false
	}
	for _, d := range op.Deps {
		if !v.happensBefore(d, b) {
			return false
		}
	}
	return true
}

// checkBuffers walks the canonical order tracking each layer's
// residency epochs: acquires open epochs, releases close them, and the
// final held set must equal the declared exit set. Each release must
// also causally follow the acquire whose epoch it closes — adjacency
// in the linear order is not enough for an event-driven executor.
func (v *validator) checkBuffers() {
	it := v.it
	openedBy := make(map[int]ID) // layer → acquire that opened the current epoch (-1: entry)
	for _, l := range it.EntryResident {
		openedBy[l] = -1
	}
	for i := range it.Ops {
		op := &it.Ops[i]
		switch op.Kind {
		case BufAcquire:
			if opener, held := openedBy[op.Layer]; held {
				v.failf(op, "layer %d acquired while already resident (epoch opened by op %d)", op.Layer, opener)
			}
			openedBy[op.Layer] = op.ID
		case BufRelease:
			opener, held := openedBy[op.Layer]
			if !held {
				v.failf(op, "release of layer %d, which holds no buffers here", op.Layer)
				continue
			}
			if opener >= 0 && !v.happensBefore(opener, op.ID) {
				v.failf(op, "does not happen-after the acquire (op %d) it releases", opener)
			}
			delete(openedBy, op.Layer)
		}
	}
	exit := make(map[int]bool, len(it.ExitResident))
	for _, l := range it.ExitResident {
		exit[l] = true
	}
	for l, opener := range openedBy {
		if !exit[l] {
			if opener >= 0 {
				v.failf(&it.Ops[opener], "layer %d still holds buffers at iteration end (missing release)", l)
			} else {
				v.errs = append(v.errs, fmt.Sprintf("entry-resident layer %d still holds buffers at iteration end (missing release)", l))
			}
		}
	}
	for _, l := range it.ExitResident {
		if _, held := openedBy[l]; !held {
			v.errs = append(v.errs, fmt.Sprintf("layer %d must exit resident but its buffers are released", l))
		}
	}
}

// checkResidency verifies every layer-tagged compute op happens-after
// the acquire that made its layer resident. The epoch is determined by
// the canonical order; the causal edge must exist through explicit
// deps or queue FIFO order, otherwise an execution interleaving exists
// where the kernel runs before its weights arrive.
func (v *validator) checkResidency() {
	it := v.it
	openedBy := make(map[int]ID)
	for _, l := range it.EntryResident {
		openedBy[l] = -1
	}
	for i := range it.Ops {
		op := &it.Ops[i]
		switch op.Kind {
		case BufAcquire:
			openedBy[op.Layer] = op.ID
		case BufRelease:
			delete(openedBy, op.Layer)
		case ComputeFP, ComputeBP:
			if op.Layer < 0 {
				continue
			}
			opener, held := openedBy[op.Layer]
			if !held {
				v.failf(op, "computes on layer %d while it holds no buffers", op.Layer)
				continue
			}
			if opener >= 0 && !v.happensBefore(opener, op.ID) {
				v.failf(op, "does not happen-after the prefetch acquire (op %d) of layer %d", opener, op.Layer)
			}
		}
	}
}

// checkBudget bounds worst-case concurrent residency with a funding
// argument: the pool starts with BudgetSlots − |entry| spare slots,
// and every acquire must either take a spare or be funded by a
// distinct release that provably fires before the acquire can issue
// (the §III-E3 recycling dependencies). If some acquire has neither, a
// timing exists — transfers finishing in an adversarial order — where
// the pool is exhausted at that acquire; with the funding matching in
// hand, fired-acquires ≤ fired-releases + spares at every instant, so
// no timing can exceed the budget.
func (v *validator) checkBudget() {
	it := v.it
	if it.BudgetSlots == 0 {
		return
	}
	spares := it.BudgetSlots - len(it.EntryResident)
	if spares < 0 {
		v.errs = append(v.errs, fmt.Sprintf("entry-resident set (%d layers) exceeds the %d-slot budget",
			len(it.EntryResident), it.BudgetSlots))
		return
	}
	var releases []ID
	consumed := make([]bool, len(it.Ops))
	for i := range it.Ops {
		op := &it.Ops[i]
		if op.Kind != BufAcquire {
			if op.Kind == BufRelease {
				releases = append(releases, op.ID)
			}
			continue
		}
		funded := false
		for _, r := range releases { // ascending ID: deterministic choice
			if !consumed[r] && v.firedBefore(r, op.ID) {
				consumed[r] = true
				funded = true
				break
			}
		}
		if funded {
			continue
		}
		if spares > 0 {
			spares--
			continue
		}
		v.failf(op, "may exceed the %d-slot window budget: no spare slot left and no release provably completes before it",
			it.BudgetSlots)
	}
}

// checkNVMeRing proves the host staging-ring discipline when the plan
// declares a bounded ring (RingSlots > 0). Restages (NVMeStage
// Write=false) open ring epochs, spills (Write=true) close them; a
// layer must not restage while staged or spill while unstaged, each
// spill must causally follow the restage it closes, and every plain
// prefetch must read a staged layer — through an ExtNVMeStaged
// dependency or a causal edge from the restage that opened the current
// epoch. Ring occupancy is bounded by the same funding argument as the
// window budget: the ring starts with RingSlots spare slots and every
// restage is funded by a spare or by a spill that provably fires
// before it.
func (v *validator) checkNVMeRing() {
	it := v.it
	if it.RingSlots == 0 {
		return
	}
	stagedBy := make(map[int]ID) // layer → restage that opened the current ring epoch
	spares := it.RingSlots
	var spills []ID
	consumed := make([]bool, len(it.Ops))
	for i := range it.Ops {
		op := &it.Ops[i]
		switch op.Kind {
		case NVMeStage:
			if op.Write {
				opener, staged := stagedBy[op.Layer]
				if !staged {
					v.failf(op, "spill of layer %d, which is not in the staging ring here", op.Layer)
					continue
				}
				if !v.happensBefore(opener, op.ID) {
					v.failf(op, "does not happen-after the restage (op %d) it closes", opener)
				}
				delete(stagedBy, op.Layer)
				spills = append(spills, op.ID)
			} else {
				if opener, staged := stagedBy[op.Layer]; staged {
					v.failf(op, "layer %d restaged while already in the ring (epoch opened by op %d)", op.Layer, opener)
				}
				stagedBy[op.Layer] = op.ID
				funded := false
				for _, s := range spills { // ascending ID: deterministic choice
					if !consumed[s] && v.firedBefore(s, op.ID) {
						consumed[s] = true
						funded = true
						break
					}
				}
				if !funded {
					if spares > 0 {
						spares--
					} else {
						v.failf(op, "may exceed the %d-slot staging ring: no spare slot left and no spill provably completes before it",
							it.RingSlots)
					}
				}
			}
		case Prefetch:
			if op.Frac != 0 {
				continue // moment-chunk transfer, not a ring read
			}
			staged := false
			for _, x := range op.Ext {
				if x.Kind == ExtNVMeStaged && x.Layer == op.Layer {
					staged = true
				}
			}
			if staged {
				continue
			}
			opener, open := stagedBy[op.Layer]
			if !open {
				v.failf(op, "prefetches layer %d, which is not in the staging ring here", op.Layer)
				continue
			}
			if !v.happensBefore(opener, op.ID) {
				v.failf(op, "does not happen-after the restage (op %d) that staged layer %d", opener, op.Layer)
			}
		}
	}
}

// checkFrac proves fractional optimizer placement is a partition: for
// every layer that splits its update, the fractional OptSteps sum to 1
// (within 1e-6), and no layer mixes fractional steps with whole-layer
// ones — a mixed layer would apply part of its update twice.
func (v *validator) checkFrac() {
	it := v.it
	sums := make(map[int]float64)
	whole := make(map[int]ID)
	for i := range it.Ops {
		op := &it.Ops[i]
		if op.Kind != OptStep {
			continue
		}
		if op.Frac != 0 {
			sums[op.Layer] += op.Frac
		} else if _, seen := whole[op.Layer]; !seen {
			whole[op.Layer] = op.ID
		}
	}
	for l := -1; l < it.Layers; l++ {
		sum, fractional := sums[l]
		if !fractional {
			continue
		}
		if w, mixed := whole[l]; mixed {
			v.failf(&it.Ops[w], "whole-layer opt-step on layer %d, which also has fractional opt-steps", l)
		}
		if diff := sum - 1; diff > 1e-6 || diff < -1e-6 {
			v.errs = append(v.errs, fmt.Sprintf("layer %d: fractional opt-steps sum to %g, want 1", l, sum))
		}
	}
}

// checkOptSlots bounds the device staging buffers for fractional
// moment chunks (OptSlots > 0): a Frac-tagged Prefetch takes a slot, a
// Frac-tagged Offload returns one, and every take must be funded by a
// spare or by a return that provably fires before it — the same
// funding argument as the window budget.
func (v *validator) checkOptSlots() {
	it := v.it
	if it.OptSlots == 0 {
		return
	}
	spares := it.OptSlots
	var returns []ID
	consumed := make([]bool, len(it.Ops))
	for i := range it.Ops {
		op := &it.Ops[i]
		if op.Frac == 0 {
			continue
		}
		switch op.Kind {
		case Offload:
			returns = append(returns, op.ID)
		case Prefetch:
			funded := false
			for _, r := range returns { // ascending ID: deterministic choice
				if !consumed[r] && v.firedBefore(r, op.ID) {
					consumed[r] = true
					funded = true
					break
				}
			}
			if funded {
				continue
			}
			if spares > 0 {
				spares--
				continue
			}
			v.failf(op, "may exceed the %d-slot moment staging budget: no spare slot left and no chunk offload provably completes before it",
				it.OptSlots)
		}
	}
}
