package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stronghold/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden plan fixtures")

// baseSpec is a small but fully featured planner input; the fixture
// variants toggle one feature each.
func baseSpec() Spec {
	return Spec{
		Layers: 6, Window: 2, Queues: 1,
		BufBytes:    1 << 20,
		WeightBytes: 1 << 19, CheckpointBytes: 1 << 16, StateBytes: 1 << 20,
		FwdFlops: 1e9, BwdFlops: 2e9, EmbedFlops: 5e8,
		ResidentOptFlops: 3e8,
		OptDurNS:         sim.Milliseconds(2),
	}
}

// fixtureSpecs is the feature matrix the golden fixtures and the
// validator acceptance test cover: the default schedule, the
// synchronous/single-optimizer ablations, multi-queue with gradient
// all-reduce, the NVMe tier, and a heterogeneous LayerScale.
func fixtureSpecs() map[string]Spec {
	def := baseSpec()

	sync := baseSpec()
	sync.Sync, sync.SingleOpt = true, true

	multi := baseSpec()
	multi.Queues = 4
	multi.GradSyncFlops = 1e8

	nvme := baseSpec()
	nvme.NVMe = true

	hetero := baseSpec()
	hetero.LayerScale = []float64{1, 1.5, 0.5, 2, 1, 0.75}

	coopt := baseSpec()
	coopt.OptGPUFrac = 0.25
	coopt.MomentBytes = 1 << 20
	coopt.GPUOptFlops = 4e8

	return map[string]Spec{
		"default":     def,
		"sync":        sync,
		"multistream": multi,
		"nvme":        nvme,
		"hetero":      hetero,
		"coopt":       coopt,
	}
}

// Every plan the planner emits must pass the validator — the executor
// relies on it to turn the engine's runtime buffer panic into a
// pre-simulation diagnostic.
func TestBuildOutputsValidate(t *testing.T) {
	specs := fixtureSpecs()
	// Edge geometries on top of the feature matrix.
	one := baseSpec()
	one.Layers, one.Window = 1, 1
	specs["single-layer"] = one
	wide := baseSpec()
	wide.Window = wide.Layers // window covers the whole model
	specs["full-window"] = wide
	deep := baseSpec()
	deep.Layers, deep.Window = 17, 5
	specs["deep"] = deep

	for name, s := range specs {
		it, err := Build(s)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if err := Validate(it); err != nil {
			t.Errorf("%s: planner output rejected by its own validator:\n%v", name, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	for name, s := range fixtureSpecs() {
		a, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Build(s)
		if Text(a) != Text(b) {
			t.Errorf("%s: two builds of the same spec render differently", name)
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	for name, mut := range map[string]func(*Spec){
		"no layers":        func(s *Spec) { s.Layers = 0 },
		"no window":        func(s *Spec) { s.Window = 0 },
		"no queues":        func(s *Spec) { s.Queues = 0 },
		"scale mismatch":   func(s *Spec) { s.LayerScale = []float64{1, 2} },
		"negative window":  func(s *Spec) { s.Window = -3 },
		"negative layers":  func(s *Spec) { s.Layers = -1 },
		"zero via queues":  func(s *Spec) { s.Queues = -2 },
		"scale too long":   func(s *Spec) { s.LayerScale = make([]float64, 99) },
		"scale one short":  func(s *Spec) { s.LayerScale = make([]float64, 5) },
		"window and layer": func(s *Spec) { s.Layers, s.Window = 0, 0 },
	} {
		s := baseSpec()
		mut(&s)
		if _, err := Build(s); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", name)
		}
	}
}

// The golden fixtures pin the canonical text rendering of the feature
// matrix: any change to the planner's emission order, op payloads or
// dependency wiring shows up as a fixture diff. Regenerate with
// `go test ./internal/plan -run TestGoldenPlans -update` and review the
// diff like any schedule change.
func TestGoldenPlans(t *testing.T) {
	for name, s := range fixtureSpecs() {
		it, err := Build(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := Text(it)
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing fixture (run with -update): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: plan drifted from its golden fixture (run with -update and review)\nwant:\n%s\ngot:\n%s",
				name, want, got)
		}
	}
}
