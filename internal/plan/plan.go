// Package plan defines a first-class intermediate representation for
// offload schedules: the prefetch/offload/compute/optimizer/staging
// operations of one training iteration, with explicit dependency
// edges, layer tags and deterministic op IDs. The planner (build.go)
// lowers a window decision and feature set into a plan; the validator
// (validate.go) checks the scheduling invariants on the IR before any
// simulation; the executor (exec.go) walks a plan and issues the
// simulated work through an environment interface — the STRONGHOLD
// engine and the baseline engines are different environments walking
// plans from different planners. diff.go turns two plans for adjacent
// window sizes into the prefetch/offload patch the adaptive scheduler
// applies at iteration boundaries.
package plan

import "stronghold/internal/sim"

// Kind discriminates the schedule operations.
type Kind uint8

const (
	// Prefetch copies a layer's state host→device (PCIe H2D).
	Prefetch Kind = iota + 1
	// Offload copies a layer's state device→host (PCIe D2H).
	Offload
	// ComputeFP is forward kernel work on one execution queue.
	ComputeFP
	// ComputeBP is backward kernel work on one execution queue.
	ComputeBP
	// OptStep applies one layer's (or the resident set's) Adam update,
	// on the CPU by default or on the GPU when Op.GPU is set.
	OptStep
	// NVMeStage moves a layer's state between the host staging ring and
	// secondary storage (Op.Write selects spill vs. restage).
	NVMeStage
	// BufAcquire claims a layer's device window buffers; it gates the
	// layer's prefetch and models the §III-E3 buffer discipline.
	BufAcquire
	// BufRelease returns a layer's device window buffers after its
	// offload completes, recycling them for a later acquire.
	BufRelease
	// Join is a zero-duration synchronization point: it fires when all
	// its dependencies have, letting one op (typically an Export) wait
	// on several branches — e.g. the CPU and GPU halves of a split
	// optimizer update both publishing one ExtOptDone.
	Join
)

// String returns the lower-case kind mnemonic used by the text format.
func (k Kind) String() string {
	switch k {
	case Prefetch:
		return "prefetch"
	case Offload:
		return "offload"
	case ComputeFP:
		return "compute-fp"
	case ComputeBP:
		return "compute-bp"
	case OptStep:
		return "opt-step"
	case NVMeStage:
		return "nvme-stage"
	case BufAcquire:
		return "buf-acquire"
	case BufRelease:
		return "buf-release"
	case Join:
		return "join"
	}
	return "invalid"
}

// ID identifies an op within its plan: ops are numbered 0..len(Ops)-1
// in emission order, which is also the canonical topological order the
// validator linearizes over (every dependency points at a smaller ID).
type ID int32

// ExtKind names a cross-iteration dependency or export: state produced
// by a previous iteration (or the warm-up) that this plan consumes, or
// state this plan publishes for the next iteration.
type ExtKind uint8

const (
	// ExtOptDone: the layer's parameters are updated and ready to
	// prefetch (the previous iteration's optimizer step, or the initial
	// weights before the first iteration).
	ExtOptDone ExtKind = iota + 1
	// ExtNVMeStaged: the layer's weights are present in the host
	// staging ring (NVMe tier only).
	ExtNVMeStaged
	// ExtResident: the layer is device-resident from the previous
	// iteration's backward pass (or a mid-run window grow whose
	// prefetch may still be in flight).
	ExtResident
)

// String returns the short mnemonic used by the text format.
func (k ExtKind) String() string {
	switch k {
	case ExtOptDone:
		return "opt"
	case ExtNVMeStaged:
		return "staged"
	case ExtResident:
		return "resident"
	}
	return "invalid"
}

// ExtDep is an external dependency: op issue waits for the named
// cross-iteration fact about a layer.
type ExtDep struct {
	Kind  ExtKind `json:"kind"`
	Layer int     `json:"layer"`
}

// Op is one schedule operation. Fields beyond Kind are interpreted per
// kind: copies and stages carry Bytes, kernels carry Flops and a queue
// index, explicit-duration environments read DurNS.
type Op struct {
	ID   ID     `json:"id"`
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// Layer tags the transformer block the op serves; -1 for
	// model-level ops (embedding, head, resident optimizer sweep).
	Layer int `json:"layer"`
	// Queue is the execution-queue index for compute/optimizer ops —
	// a GPU stream in the STRONGHOLD engine, a serial resource in the
	// baseline engines. -1 for ops bound to a fixed resource (copies,
	// staging, buffer bookkeeping).
	Queue int `json:"queue"`
	// Bytes is the payload of Prefetch/Offload/NVMeStage ops, and the
	// device bytes a BufAcquire pins until its matching BufRelease.
	Bytes int64 `json:"bytes,omitempty"`
	// Flops is the kernel work of compute ops and GPU OptSteps.
	Flops float64 `json:"flops,omitempty"`
	// DurNS is an explicit duration for environments that issue ops by
	// time rather than by work (CPU OptSteps, the baseline engines).
	DurNS sim.Time `json:"dur_ns,omitempty"`
	// Write selects the NVMeStage direction: true spills to storage,
	// false restages into the host ring.
	Write bool `json:"write,omitempty"`
	// GPU places an OptStep on the device queue instead of the CPU
	// optimizer pool.
	GPU bool `json:"gpu,omitempty"`
	// Frac, when non-zero, marks a fractional optimizer-placement op:
	// on an OptStep it is the share of the layer's optimizer update
	// this op performs (a layer's fractional OptSteps must sum to 1);
	// on a Prefetch/Offload it tags the op as a moment-chunk transfer
	// holding one of the plan's OptSlots staging buffers.
	Frac float64 `json:"frac,omitempty"`
	// Deps are in-plan dependencies; every entry must be a smaller ID.
	Deps []ID `json:"deps,omitempty"`
	// Ext are cross-iteration dependencies the environment resolves.
	Ext []ExtDep `json:"ext,omitempty"`
	// Export, when non-zero, publishes this op's completion as the
	// named cross-iteration fact for Op.Layer (e.g. an OptStep exports
	// ExtOptDone; the next iteration's prefetch of the layer consumes
	// it).
	Export ExtKind `json:"export,omitempty"`
}

// Iteration is one full training iteration's schedule.
type Iteration struct {
	// Layers is the model depth n; Window the working-set size m;
	// Queues the number of compute execution queues.
	Layers int `json:"layers"`
	Window int `json:"window"`
	Queues int `json:"queues"`
	// BudgetSlots bounds how many layers may hold device buffers at
	// once (the reserved pool holds BudgetSlots layer-sized slots);
	// BudgetBytes is the same ceiling in bytes. Zero disables the
	// respective check.
	BudgetSlots int   `json:"budget_slots,omitempty"`
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// EntryResident lists the layers holding device buffers when the
	// iteration starts; ExitResident when it ends. The schedule must
	// transform one into the other (§III-E1's window invariant).
	EntryResident []int `json:"entry_resident"`
	ExitResident  []int `json:"exit_resident"`
	// NVMe records whether the plan stages layer state on secondary
	// storage (diffing uses it to carry staging dependencies into
	// patches).
	NVMe bool `json:"nvme,omitempty"`
	// RingSlots, when non-zero, bounds the host staging ring: at most
	// RingSlots layers may sit in the ring at once, each ring epoch
	// opened by a restage (NVMeStage Write=false) and closed by a spill
	// (NVMeStage Write=true). The validator proves the bound with the
	// same funding argument as the window budget.
	RingSlots int `json:"ring_slots,omitempty"`
	// OptSlots, when non-zero, bounds the device staging buffers for
	// fractional optimizer moment chunks: Frac-tagged Prefetches take a
	// slot, Frac-tagged Offloads return it.
	OptSlots int `json:"opt_slots,omitempty"`
	// Ops in emission order — the canonical topological order.
	Ops []Op `json:"ops"`
}
