package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Text renders the plan in a deterministic line-oriented format: a
// header, the resident sets, then one line per op in canonical order.
// Two builds of the same Spec produce identical text, which is what
// the golden fixtures and the CLI diff mode compare.
func Text(it *Iteration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan layers=%d window=%d queues=%d budget=%d slots", it.Layers, it.Window, it.Queues, it.BudgetSlots)
	if it.BudgetBytes > 0 {
		fmt.Fprintf(&b, " budget_bytes=%d", it.BudgetBytes)
	}
	if it.NVMe {
		b.WriteString(" nvme")
	}
	if it.RingSlots > 0 {
		fmt.Fprintf(&b, " ring=%d", it.RingSlots)
	}
	if it.OptSlots > 0 {
		fmt.Fprintf(&b, " opt_slots=%d", it.OptSlots)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "entry=%v exit=%v\n", it.EntryResident, it.ExitResident)
	for i := range it.Ops {
		b.WriteString(opLine(&it.Ops[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

// PatchText renders a patch in the same line format as Text.
func PatchText(p *Patch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "patch window %d->%d", p.From, p.To)
	if len(p.Grow) > 0 {
		fmt.Fprintf(&b, " grow=%v", p.Grow)
	}
	if len(p.Shrink) > 0 {
		fmt.Fprintf(&b, " shrink=%v", p.Shrink)
	}
	b.WriteByte('\n')
	for i := range p.Ops {
		b.WriteString(opLine(&p.Ops[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

func opLine(op *Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4d %-11s %-24q", op.ID, op.Kind, op.Name)
	if op.Layer >= 0 {
		fmt.Fprintf(&b, " L%-3d", op.Layer)
	} else {
		b.WriteString(" -   ")
	}
	if op.Queue >= 0 {
		fmt.Fprintf(&b, " q%d", op.Queue)
	}
	if op.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", op.Bytes)
	}
	if op.Flops > 0 {
		fmt.Fprintf(&b, " flops=%g", op.Flops)
	}
	if op.DurNS > 0 {
		fmt.Fprintf(&b, " dur=%dns", int64(op.DurNS))
	}
	if op.Write {
		b.WriteString(" write")
	}
	if op.GPU {
		b.WriteString(" gpu")
	}
	if op.Frac != 0 {
		fmt.Fprintf(&b, " frac=%g", op.Frac)
	}
	if len(op.Deps) > 0 {
		fmt.Fprintf(&b, " deps=%v", op.Deps)
	}
	if len(op.Ext) > 0 {
		b.WriteString(" ext=[")
		for i, x := range op.Ext {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:L%d", x.Kind, x.Layer)
		}
		b.WriteByte(']')
	}
	if op.Export != 0 {
		fmt.Fprintf(&b, " export=%s", op.Export)
	}
	return b.String()
}

// JSON renders the plan as indented JSON with a stable field order.
func JSON(it *Iteration) ([]byte, error) {
	return json.MarshalIndent(it, "", "  ")
}

// DiffText returns a unified-style line diff between two plan texts
// ("-" lines only in a, "+" lines only in b, two spaces for common
// lines, with unchanged runs elided). An empty string means the plans
// render identically.
func DiffText(a, b *Iteration) string {
	al := strings.Split(strings.TrimSuffix(Text(a), "\n"), "\n")
	bl := strings.Split(strings.TrimSuffix(Text(b), "\n"), "\n")
	ops := diffLines(al, bl)
	changed := false
	for _, o := range ops {
		if o.tag != ' ' {
			changed = true
			break
		}
	}
	if !changed {
		return ""
	}
	var out strings.Builder
	const ctx = 2
	// keep[i] marks common lines within ctx of a change.
	keep := make([]bool, len(ops))
	for i, o := range ops {
		if o.tag == ' ' {
			continue
		}
		for j := max(0, i-ctx); j < min(len(ops), i+ctx+1); j++ {
			keep[j] = true
		}
	}
	elided := false
	for i, o := range ops {
		if o.tag == ' ' && !keep[i] {
			if !elided {
				out.WriteString("  ...\n")
				elided = true
			}
			continue
		}
		elided = false
		fmt.Fprintf(&out, "%c %s\n", o.tag, o.line)
	}
	return out.String()
}

type diffOp struct {
	tag  byte // ' ' common, '-' removed, '+' added
	line string
}

// diffLines computes a minimal edit script via the classic LCS table.
// Plans are a few thousand lines at most, so quadratic is fine.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else {
				lcs[i][j] = max(lcs[i+1][j], lcs[i][j+1])
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i]})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j]})
	}
	return ops
}
