package plan

import (
	"fmt"

	"stronghold/internal/sim"
)

// Spec is the planner input: the window decision, feature toggles and
// per-layer costs that determine one iteration's schedule. It is plain
// data — the engine derives it from its model and features, tests
// write it by hand.
type Spec struct {
	Layers int // model depth n
	Window int // working-set size m
	Queues int // concurrent compute queues (multi-stream workers)

	// NVMe stages layer state on secondary storage after each
	// optimizer step. Sync serializes copies with the next layer's
	// kernels (the pageable caching-allocator path, §III-E3 off).
	// SingleOpt serializes each layer's backward kernels behind the
	// previous layer's optimizer step (§III-E1 off).
	NVMe      bool
	Sync      bool
	SingleOpt bool

	// BudgetSlots is the layer-slot capacity of the device buffer pool
	// (window + spare, §III-E3); 0 defaults to Window+1. BufBytes is
	// the device bytes one resident layer pins.
	BudgetSlots int
	BufBytes    int64

	// WeightBytes moves on every prefetch; CheckpointBytes rides along
	// on FP offloads and BP prefetches; StateBytes (weights+grads)
	// moves on BP offloads.
	WeightBytes     int64
	CheckpointBytes int64
	StateBytes      int64

	// Per-queue kernel work. GradSyncFlops > 0 adds the multi-queue
	// gradient all-reduce after each layer's backward kernels.
	FwdFlops, BwdFlops, EmbedFlops float64
	GradSyncFlops                  float64
	// ResidentOptFlops is the fused on-GPU update of the resident
	// window and embedding/head.
	ResidentOptFlops float64
	// OptDurNS is one layer's CPU Adam duration (scaled per layer).
	OptDurNS sim.Time

	// OptGPUFrac, when in (0,1), splits each offloaded layer's
	// optimizer update: the 1−g share runs on the CPU pool as before,
	// the g share runs on the GPU against moment chunks round-tripped
	// over PCIe (the co-optimized placement, solver Decision). The two
	// halves join before publishing ExtOptDone. MomentBytes is the
	// full-layer moment payload the g share is cut from; GPUOptFlops
	// the kernel work of one full-layer GPU update.
	OptGPUFrac  float64
	MomentBytes int64
	GPUOptFlops float64

	// LayerScale, when non-nil (length = Layers), scales layer i's
	// compute and transfer volume (heterogeneous models, §III-B).
	LayerScale []float64
}

func (s Spec) scale(i int) float64 {
	if s.LayerScale == nil || i < 0 || i >= len(s.LayerScale) {
		return 1
	}
	return s.LayerScale[i]
}

func (s Spec) scaleBytes(i int, bytes int64) int64 {
	return int64(float64(bytes) * s.scale(i))
}

// Build lowers a spec into one iteration's schedule. The op order is
// the exact issue order of the executor — a topological order in which
// every dependency points backwards — and is deterministic: equal
// specs produce byte-identical plans.
func Build(s Spec) (*Iteration, error) {
	if s.Layers < 1 {
		return nil, fmt.Errorf("plan: model needs at least one layer, got %d", s.Layers)
	}
	if s.Window < 1 {
		return nil, fmt.Errorf("plan: window must be positive, got %d", s.Window)
	}
	if s.Queues < 1 {
		return nil, fmt.Errorf("plan: need at least one compute queue, got %d", s.Queues)
	}
	if s.LayerScale != nil && len(s.LayerScale) != s.Layers {
		return nil, fmt.Errorf("plan: LayerScale has %d entries for %d layers", len(s.LayerScale), s.Layers)
	}
	if s.OptGPUFrac < 0 || s.OptGPUFrac >= 1 {
		if s.OptGPUFrac != 0 {
			return nil, fmt.Errorf("plan: OptGPUFrac %g outside (0,1)", s.OptGPUFrac)
		}
	}
	n, m, k := s.Layers, s.Window, s.Queues
	budget := s.BudgetSlots
	if budget == 0 {
		budget = m + 1
	}

	it := &Iteration{
		Layers:      n,
		Window:      m,
		Queues:      k,
		BudgetSlots: budget,
		BudgetBytes: int64(budget) * s.BufBytes,
		NVMe:        s.NVMe,
	}
	if s.OptGPUFrac > 0 {
		// Two moment staging buffers: one layer's chunk updating on the
		// GPU while the next layer's chunk is in flight.
		it.OptSlots = 2
	}
	for i := 0; i < m && i < n; i++ {
		it.EntryResident = append(it.EntryResident, i)
		it.ExitResident = append(it.ExitResident, i)
	}

	emit := func(op Op) ID {
		op.ID = ID(len(it.Ops))
		it.Ops = append(it.Ops, op)
		return op.ID
	}
	deps := func(ids ...ID) []ID { return append([]ID(nil), ids...) }

	// ---- Forward pass ----------------------------------------------
	// The window holds layers 0..m-1 at entry; FP prefetches ahead of
	// the compute front and offloads every layer except the last m.
	embedOp := make([]ID, k)
	for q := 0; q < k; q++ {
		embedOp[q] = emit(Op{Kind: ComputeFP, Name: "fp embed", Layer: -1, Queue: q, Flops: s.EmbedFlops})
	}

	prefetchOp := make([]ID, n)   // -1 when the layer starts resident
	fpKernelOp := make([][]ID, n) // per-queue forward kernels
	fpOffloadOp := make([]ID, n)
	fpReleaseOp := make([]ID, n)
	for i := range prefetchOp {
		prefetchOp[i], fpOffloadOp[i], fpReleaseOp[i] = -1, -1, -1
	}

	for i := 0; i < n; i++ {
		// pre_forward(i): load the layer just outside the window
		// (Fig. 3b ①), claiming its buffers at issue. The prefetch
		// recycles the buffer freed by layer j-m-1's post-forward
		// offload; the first prefetch takes the spare slot.
		if j := i + m; j < n {
			acq := Op{Kind: BufAcquire, Name: fmt.Sprintf("acquire L%d", j), Layer: j, Queue: -1,
				Bytes: s.BufBytes, Ext: []ExtDep{{Kind: ExtOptDone, Layer: j}}}
			if s.NVMe {
				acq.Ext = append(acq.Ext, ExtDep{Kind: ExtNVMeStaged, Layer: j})
			}
			if j > m {
				acq.Deps = deps(fpReleaseOp[j-m-1])
			}
			acqID := emit(acq)
			prefetchOp[j] = emit(Op{Kind: Prefetch, Name: fmt.Sprintf("prefetch L%d", j), Layer: j, Queue: -1,
				Bytes: s.scaleBytes(j, s.WeightBytes), Deps: deps(acqID)})
		}
		for q := 0; q < k; q++ {
			op := Op{Kind: ComputeFP, Name: fmt.Sprintf("fp L%d", i), Layer: i, Queue: q,
				Flops: s.FwdFlops * s.scale(i)}
			if prefetchOp[i] >= 0 {
				op.Deps = deps(prefetchOp[i])
			} else {
				op.Ext = []ExtDep{{Kind: ExtResident, Layer: i}}
			}
			if i == 0 {
				op.Deps = append(op.Deps, embedOp[q])
			}
			if s.Sync && i > 0 && fpOffloadOp[i-1] >= 0 {
				op.Deps = append(op.Deps, fpOffloadOp[i-1]) // allocator sync
			}
			fpKernelOp[i] = append(fpKernelOp[i], emit(op))
		}
		if i < n-m {
			// post_forward(i): the computed layer's parameters and its
			// activation checkpoint move back to the CPU (Fig. 3b ③);
			// its buffers recycle once the copy lands.
			fpOffloadOp[i] = emit(Op{Kind: Offload, Name: fmt.Sprintf("fp offload L%d", i), Layer: i, Queue: -1,
				Bytes: s.scaleBytes(i, s.WeightBytes+s.CheckpointBytes), Deps: deps(fpKernelOp[i]...)})
			fpReleaseOp[i] = emit(Op{Kind: BufRelease, Name: fmt.Sprintf("release L%d", i), Layer: i, Queue: -1,
				Bytes: s.BufBytes, Deps: deps(fpOffloadOp[i])})
		}
	}

	headOp := make([]ID, k)
	for q := 0; q < k; q++ {
		headOp[q] = emit(Op{Kind: ComputeFP, Name: "fp head+loss", Layer: -1, Queue: q,
			Flops: s.EmbedFlops, Deps: deps(fpKernelOp[n-1]...)})
	}

	// ---- Backward pass ---------------------------------------------
	// BP starts with layers n-m..n-1 resident, prefetches below the
	// window front and offloads every layer except the first m —
	// restoring the forward-entry invariant.
	bpPrefetchOp := make([]ID, n)
	bpDoneOp := make([][]ID, n) // kernels or the trailing all-reduce
	bpOffloadOp := make([]ID, n)
	bpReleaseOp := make([]ID, n)
	optOp := make([]ID, n)
	momWBOp := make([]ID, n) // fractional placement: moment write-backs
	for i := range bpPrefetchOp {
		bpPrefetchOp[i], bpOffloadOp[i], bpReleaseOp[i], optOp[i], momWBOp[i] = -1, -1, -1, -1, -1
	}

	for i := n - 1; i >= 0; i-- {
		// pre_backward(i): restore the layer just outside the window in
		// the BP direction (Fig. 3c ①) — weights plus the checkpoint
		// this iteration's FP offload produced. Its buffers come from
		// layer j+m+1's BP release; the first BP prefetch takes the
		// spare slot freed by the final FP offload.
		if j := i - m; j >= 0 {
			acq := Op{Kind: BufAcquire, Name: fmt.Sprintf("acquire L%d", j), Layer: j, Queue: -1,
				Bytes: s.BufBytes, Deps: deps(fpReleaseOp[j])}
			if s.NVMe {
				acq.Ext = []ExtDep{{Kind: ExtNVMeStaged, Layer: j}}
			}
			if j+m+1 <= n-1 {
				acq.Deps = append(acq.Deps, bpReleaseOp[j+m+1])
			}
			acqID := emit(acq)
			bpPrefetchOp[j] = emit(Op{Kind: Prefetch, Name: fmt.Sprintf("bp prefetch L%d", j), Layer: j, Queue: -1,
				Bytes: s.scaleBytes(j, s.WeightBytes+s.CheckpointBytes), Deps: deps(acqID)})
		}
		var kernels []ID
		for q := 0; q < k; q++ {
			op := Op{Kind: ComputeBP, Name: fmt.Sprintf("bp L%d", i), Layer: i, Queue: q,
				Flops: s.BwdFlops * s.scale(i)}
			if bpPrefetchOp[i] >= 0 {
				op.Deps = deps(bpPrefetchOp[i])
			}
			if i == n-1 {
				op.Deps = append(op.Deps, headOp[q])
			}
			if s.Sync && i < n-1 && bpOffloadOp[i+1] >= 0 {
				op.Deps = append(op.Deps, bpOffloadOp[i+1])
			}
			if s.SingleOpt && i+1 < n && optOp[i+1] >= 0 {
				// Without concurrent optimizers each layer's update runs
				// synchronously between BP steps (§III-E1 off).
				op.Deps = append(op.Deps, optOp[i+1])
			}
			kernels = append(kernels, emit(op))
		}
		bpDoneOp[i] = kernels
		if s.GradSyncFlops > 0 {
			// Multi-queue gradient all-reduce over HBM before the
			// layer's gradient offload (§IV-A).
			sync := emit(Op{Kind: ComputeBP, Name: fmt.Sprintf("grad allreduce L%d", i), Layer: i, Queue: 0,
				Flops: s.GradSyncFlops, Deps: deps(kernels...)})
			bpDoneOp[i] = []ID{sync}
		}

		if i >= m {
			// pre_backward ②③: offload weights+grads, update on the
			// CPU, stage through NVMe when configured, then recycle the
			// buffers. The release is emitted after the optimizer
			// chain: the executor registers completion callbacks in op
			// order, and this order reproduces the engine's exact
			// issue sequence.
			bpOffloadOp[i] = emit(Op{Kind: Offload, Name: fmt.Sprintf("bp offload L%d", i), Layer: i, Queue: -1,
				Bytes: s.scaleBytes(i, s.StateBytes), Deps: deps(bpDoneOp[i]...)})
			if g := s.OptGPUFrac; g > 0 {
				// Split update (co-optimized placement): the 1−g share runs
				// on the CPU pool, the g share round-trips its moment chunk
				// over PCIe and updates on the GPU. The chunk's staging
				// buffer recycles from the layer updated two steps earlier
				// (OptSlots = 2), and both halves join before publishing
				// ExtOptDone.
				cpuOp := emit(Op{Kind: OptStep, Name: fmt.Sprintf("adam L%d cpu", i), Layer: i, Queue: -1, Frac: 1 - g,
					DurNS: sim.Time(float64(s.OptDurNS) * s.scale(i) * (1 - g)), Deps: deps(bpOffloadOp[i])})
				momBytes := int64(g * float64(s.scaleBytes(i, s.MomentBytes)))
				fetchDeps := deps(bpOffloadOp[i])
				if i+2 < n && momWBOp[i+2] >= 0 {
					fetchDeps = append(fetchDeps, momWBOp[i+2])
				}
				fetch := emit(Op{Kind: Prefetch, Name: fmt.Sprintf("mom fetch L%d", i), Layer: i, Queue: -1,
					Frac: g, Bytes: momBytes, Deps: fetchDeps})
				gpuOp := emit(Op{Kind: OptStep, Name: fmt.Sprintf("adam L%d gpu", i), Layer: i, Queue: 0, GPU: true,
					Frac: g, Flops: g * s.GPUOptFlops * s.scale(i), Deps: deps(fetch)})
				momWBOp[i] = emit(Op{Kind: Offload, Name: fmt.Sprintf("mom writeback L%d", i), Layer: i, Queue: -1,
					Frac: g, Bytes: momBytes, Deps: deps(gpuOp)})
				optOp[i] = emit(Op{Kind: Join, Name: fmt.Sprintf("opt join L%d", i), Layer: i, Queue: -1,
					Deps: deps(cpuOp, momWBOp[i]), Export: ExtOptDone})
			} else {
				optOp[i] = emit(Op{Kind: OptStep, Name: fmt.Sprintf("adam L%d", i), Layer: i, Queue: -1,
					DurNS: sim.Time(float64(s.OptDurNS) * s.scale(i)), Deps: deps(bpOffloadOp[i]), Export: ExtOptDone})
			}
			if s.NVMe {
				wr := emit(Op{Kind: NVMeStage, Name: fmt.Sprintf("nvme spill L%d", i), Layer: i, Queue: -1,
					Write: true, Bytes: s.WeightBytes, Deps: deps(optOp[i])})
				emit(Op{Kind: NVMeStage, Name: fmt.Sprintf("nvme restage L%d", i), Layer: i, Queue: -1,
					Bytes: s.WeightBytes, Deps: deps(wr), Export: ExtNVMeStaged})
			}
			bpReleaseOp[i] = emit(Op{Kind: BufRelease, Name: fmt.Sprintf("release L%d", i), Layer: i, Queue: -1,
				Bytes: s.BufBytes, Deps: deps(bpOffloadOp[i])})
		}
	}

	// GPU-side updates: resident window layers plus embedding/head.
	emit(Op{Kind: OptStep, Name: "gpu adam resident", Layer: -1, Queue: 0, GPU: true,
		Flops: s.ResidentOptFlops, Deps: deps(bpDoneOp[0]...)})
	return it, nil
}
