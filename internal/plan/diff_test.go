package plan

import (
	"strings"
	"testing"
)

func planForWindow(t *testing.T, window int) *Iteration {
	t.Helper()
	s := baseSpec()
	s.Window = window
	s.BudgetSlots = 0 // re-derive window+1
	return mustBuild(t, s)
}

func TestDiffGrow(t *testing.T) {
	a, b := planForWindow(t, 2), planForWindow(t, 4)
	p, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Grow) != 2 || p.Grow[0] != 2 || p.Grow[1] != 3 {
		t.Fatalf("grow layers %v, want [2 3]", p.Grow)
	}
	if len(p.Shrink) != 0 {
		t.Fatalf("unexpected shrink set %v", p.Shrink)
	}
	if len(p.Ops) != 4 {
		t.Fatalf("got %d patch ops, want acquire+prefetch per grown layer", len(p.Ops))
	}
	for _, l := range p.Grow {
		var acq, pf *Op
		for i := range p.Ops {
			if p.Ops[i].Layer != l {
				continue
			}
			switch p.Ops[i].Kind {
			case BufAcquire:
				acq = &p.Ops[i]
			case Prefetch:
				pf = &p.Ops[i]
			}
		}
		if acq == nil || pf == nil {
			t.Fatalf("layer %d: patch missing acquire/prefetch pair", l)
		}
		// The grow prefetch publishes residency for the next
		// iteration's kernels; its gating is lifted from plan a, where
		// the layer was windowed.
		if pf.Export != ExtResident {
			t.Errorf("layer %d: grow prefetch must export residency", l)
		}
		if len(acq.Ext) == 0 || acq.Ext[0].Kind != ExtOptDone {
			t.Errorf("layer %d: grow acquire must wait on the layer's optimizer", l)
		}
	}
}

func TestDiffShrink(t *testing.T) {
	a, b := planForWindow(t, 4), planForWindow(t, 2)
	p, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shrink) != 2 || p.Shrink[0] != 2 || p.Shrink[1] != 3 {
		t.Fatalf("shrink layers %v, want [2 3]", p.Shrink)
	}
	if len(p.Ops) != 4 {
		t.Fatalf("got %d patch ops, want offload+release per evicted layer", len(p.Ops))
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Kind == Offload && op.Export != ExtOptDone {
			t.Errorf("layer %d: eviction offload must republish the layer as host-updated", op.Layer)
		}
	}
	if txt := PatchText(p); !strings.Contains(txt, "shrink offload L2") {
		t.Errorf("patch text missing eviction op:\n%s", txt)
	}
}

func TestDiffSameWindowIsEmpty(t *testing.T) {
	a, b := planForWindow(t, 3), planForWindow(t, 3)
	p, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 0 || len(p.Grow) != 0 || len(p.Shrink) != 0 {
		t.Fatalf("diff of equal windows is not empty: %+v", p)
	}
	if d := DiffText(a, b); d != "" {
		t.Fatalf("DiffText of identical plans: %q", d)
	}
}

func TestDiffRejectsDifferentModels(t *testing.T) {
	a := planForWindow(t, 2)
	s := baseSpec()
	s.Layers = 9
	s.LayerScale = nil
	b := mustBuild(t, s)
	if _, err := Diff(a, b); err == nil {
		t.Fatal("diff across models must fail")
	}
}

func TestDiffTextMarksChanges(t *testing.T) {
	a, b := planForWindow(t, 2), planForWindow(t, 3)
	d := DiffText(a, b)
	if d == "" {
		t.Fatal("different windows render identically")
	}
	if !strings.Contains(d, "- plan layers=6 window=2") || !strings.Contains(d, "+ plan layers=6 window=3") {
		t.Errorf("diff missing header change:\n%s", d)
	}
}
