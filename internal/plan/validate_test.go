package plan

import (
	"strings"
	"testing"
)

func mustBuild(t *testing.T, s Spec) *Iteration {
	t.Helper()
	it, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(it); err != nil {
		t.Fatalf("base plan invalid before mutation: %v", err)
	}
	return it
}

func findOp(t *testing.T, it *Iteration, kind Kind, name string) *Op {
	t.Helper()
	for i := range it.Ops {
		if it.Ops[i].Kind == kind && it.Ops[i].Name == name {
			return &it.Ops[i]
		}
	}
	t.Fatalf("plan has no %s op named %q", kind, name)
	return nil
}

// Each case mutates one invariant out of a valid planner output and
// must be rejected with a diagnostic naming that invariant — the
// negative fixtures for the validator's four checks (structure,
// buffer pairing, residency-before-use, window budget).
func TestValidateRejectsMutations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, it *Iteration)
		wantMsg string
	}{
		{
			// Structure: a forward edge is a cycle under the canonical
			// topological order.
			name: "dependency cycle",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, Prefetch, "prefetch L2")
				op.Deps = append(op.Deps, op.ID+1)
			},
			wantMsg: "dependency cycle",
		},
		{
			// Structure: an ExtResident dependency on a layer outside
			// the entry-resident set can never be satisfied.
			name: "resident dep on windowed layer",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, ComputeFP, "fp L4")
				op.Ext = append(op.Ext, ExtDep{Kind: ExtResident, Layer: 5})
			},
			wantMsg: "not entry-resident",
		},
		{
			// Buffers: dropping a release (neutralized to an inert op so
			// IDs stay sequential) leaves the layer holding buffers at
			// iteration end.
			name: "dropped release",
			mutate: func(t *testing.T, it *Iteration) {
				// Layer 5's backward release is the last time the layer
				// frees its slot; without it the layer leaks past the
				// iteration boundary.
				op := findOp(t, it, BufRelease, "release L5")
				op.Kind = OptStep
				op.Layer = -1
			},
			wantMsg: "missing release",
		},
		{
			// Buffers: acquiring a layer that is already resident.
			name: "double acquire",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, BufAcquire, "acquire L3")
				op.Layer = 0 // layer 0 is entry-resident
			},
			wantMsg: "already resident",
		},
		{
			// Buffers: releasing a layer that holds nothing here.
			name: "release without hold",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, BufRelease, "release L0")
				op.Layer = 5 // not yet acquired at that point
			},
			wantMsg: "holds no buffers",
		},
		{
			// Buffers: the declared exit set must match the held set.
			name: "exit set mismatch",
			mutate: func(t *testing.T, it *Iteration) {
				it.ExitResident = append(it.ExitResident, it.Layers-1)
			},
			wantMsg: "must exit resident",
		},
		{
			// Residency: a kernel whose prefetch edge is dropped can run
			// before its weights arrive under some event timing.
			name: "reordered prefetch",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, ComputeFP, "fp L3")
				op.Deps = nil
			},
			wantMsg: "does not happen-after",
		},
		{
			// Budget: dropping the recycle dependency lets the acquire
			// race the release it was funded by — pool exhaustion under
			// adversarial transfer timing.
			name: "dropped recycle dep",
			mutate: func(t *testing.T, it *Iteration) {
				op := findOp(t, it, BufAcquire, "acquire L5")
				op.Deps = nil
			},
			wantMsg: "window budget",
		},
		{
			// Budget: a pool smaller than the entry-resident set cannot
			// even start the iteration.
			name: "budget below entry set",
			mutate: func(t *testing.T, it *Iteration) {
				it.BudgetSlots = len(it.EntryResident) - 1
			},
			wantMsg: "exceeds the",
		},
		{
			// Budget: removing the spare slot leaves the first prefetch
			// acquire unfunded.
			name: "no spare slot",
			mutate: func(t *testing.T, it *Iteration) {
				it.BudgetSlots = len(it.EntryResident)
			},
			wantMsg: "window budget",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := mustBuild(t, baseSpec())
			tc.mutate(t, it)
			err := Validate(it)
			if err == nil {
				t.Fatalf("validator accepted the mutated plan")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// A broken plan reports every violation at once, not just the first.
func TestValidateAggregatesViolations(t *testing.T) {
	it := mustBuild(t, baseSpec())
	findOp(t, it, ComputeFP, "fp L3").Deps = nil           // residency
	it.ExitResident = append(it.ExitResident, it.Layers-1) // buffers
	err := Validate(it)
	if err == nil {
		t.Fatal("validator accepted a doubly broken plan")
	}
	for _, want := range []string{"does not happen-after", "must exit resident"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate diagnostic missing %q:\n%v", want, err)
		}
	}
}
