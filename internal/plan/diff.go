package plan

import "fmt"

// Patch is the schedule delta between two plans for the same model at
// different window sizes — what the adaptive scheduler applies at an
// iteration boundary instead of rebuilding the resident set from
// scratch. Growing the window prefetches the newly resident layers;
// shrinking offloads the evicted ones (their parameters were just
// updated) back to the host and recycles their buffers. Patch ops are
// a self-contained mini-plan: IDs are local, dependencies stay within
// the patch, and cross-iteration facts flow through Ext/Export exactly
// as in a full plan.
type Patch struct {
	// From and To are the window sizes the patch transforms between.
	From int `json:"from"`
	To   int `json:"to"`
	// Grow lists the layers being made resident; Shrink the layers
	// being evicted. At most one of the two is non-empty.
	Grow   []int `json:"grow,omitempty"`
	Shrink []int `json:"shrink,omitempty"`
	// Ops in canonical order, ready for Apply.
	Ops []Op `json:"ops"`
}

// Diff computes the patch that moves a schedule from plan a's window
// to plan b's. Both plans must describe the same model (layer count);
// the op payloads (prefetch bytes, external dependencies) are lifted
// from whichever plan schedules the layer's transfer, so the patch
// inherits LayerScale- and NVMe-awareness without recomputing either.
func Diff(a, b *Iteration) (*Patch, error) {
	if a.Layers != b.Layers {
		return nil, fmt.Errorf("plan: cannot diff plans for different models (%d vs %d layers)", a.Layers, b.Layers)
	}
	p := &Patch{From: a.Window, To: b.Window}
	inA := residentSet(a.EntryResident)
	inB := residentSet(b.EntryResident)
	switch {
	case b.Window > a.Window:
		// Newly resident layers appear in b's entry set only. Their
		// acquire gating and prefetch payload are scheduled ops in plan
		// a (where they were windowed), so copy them from there.
		for _, j := range b.EntryResident {
			if inA[j] {
				continue
			}
			p.Grow = append(p.Grow, j)
			acq, pf := layerPrefetch(a, j)
			if acq == nil || pf == nil {
				return nil, fmt.Errorf("plan: no prefetch schedule for grown layer %d in the %d-window plan", j, a.Window)
			}
			acquireID := ID(len(p.Ops))
			p.Ops = append(p.Ops, Op{
				ID: acquireID, Kind: BufAcquire, Name: fmt.Sprintf("grow acquire L%d", j),
				Layer: j, Queue: -1, Bytes: acq.Bytes, Ext: append([]ExtDep(nil), acq.Ext...),
			})
			p.Ops = append(p.Ops, Op{
				ID: acquireID + 1, Kind: Prefetch, Name: fmt.Sprintf("grow prefetch L%d", j),
				Layer: j, Queue: -1, Bytes: pf.Bytes, Deps: []ID{acquireID},
				Export: ExtResident,
			})
		}
	case b.Window < a.Window:
		// Evicted layers are windowed in plan b; its forward prefetch
		// bytes are exactly the parameter payload the eviction offload
		// must move back.
		for _, j := range a.EntryResident {
			if inB[j] {
				continue
			}
			p.Shrink = append(p.Shrink, j)
			_, pf := layerPrefetch(b, j)
			if pf == nil {
				return nil, fmt.Errorf("plan: no prefetch schedule for evicted layer %d in the %d-window plan", j, b.Window)
			}
			offloadID := ID(len(p.Ops))
			p.Ops = append(p.Ops, Op{
				ID: offloadID, Kind: Offload, Name: fmt.Sprintf("shrink offload L%d", j),
				Layer: j, Queue: -1, Bytes: pf.Bytes,
				Export: ExtOptDone,
			})
			p.Ops = append(p.Ops, Op{
				ID: offloadID + 1, Kind: BufRelease, Name: fmt.Sprintf("shrink release L%d", j),
				Layer: j, Queue: -1, Deps: []ID{offloadID},
			})
		}
	}
	return p, nil
}

// Apply walks the patch ops through env, exactly like Execute walks an
// iteration plan.
func (p *Patch) Apply(env Env) { executeOps(p.Ops, env) }

func residentSet(layers []int) map[int]bool {
	s := make(map[int]bool, len(layers))
	for _, l := range layers {
		s[l] = true
	}
	return s
}

// layerPrefetch finds layer j's forward-pass acquire and prefetch ops
// in it (the first of each in canonical order).
func layerPrefetch(it *Iteration, j int) (acq, pf *Op) {
	for i := range it.Ops {
		op := &it.Ops[i]
		if op.Layer != j {
			continue
		}
		switch op.Kind {
		case BufAcquire:
			if acq == nil {
				acq = op
			}
		case Prefetch:
			if pf == nil {
				pf = op
			}
		}
		if acq != nil && pf != nil {
			return acq, pf
		}
	}
	return acq, pf
}
