package plan

import (
	"testing"

	"stronghold/internal/sim"
)

// recordEnv is a minimal Env that records the executor's walk: issue
// order, dependency wiring and exports.
type recordEnv struct {
	eng      *sim.Engine
	issued   []ID
	depCount map[ID]int
	exported map[ExtDep]*sim.Signal
	resolved []ExtDep
}

func newRecordEnv() *recordEnv {
	return &recordEnv{
		eng:      sim.NewEngine(),
		depCount: map[ID]int{},
		exported: map[ExtDep]*sim.Signal{},
	}
}

func (e *recordEnv) Issue(op *Op, deps []*sim.Signal) *sim.Signal {
	e.issued = append(e.issued, op.ID)
	e.depCount[op.ID] = len(deps)
	return sim.FiredSignal(e.eng)
}

func (e *recordEnv) Resolve(d ExtDep) *sim.Signal {
	e.resolved = append(e.resolved, d)
	return nil // already holds
}

func (e *recordEnv) Export(op *Op, sig *sim.Signal) {
	e.exported[ExtDep{Kind: op.Export, Layer: op.Layer}] = sig
}

func TestExecuteWalksCanonicalOrder(t *testing.T) {
	it := mustBuild(t, baseSpec())
	env := newRecordEnv()
	sigs := Execute(it, env)
	if len(sigs) != len(it.Ops) {
		t.Fatalf("got %d signals for %d ops", len(sigs), len(it.Ops))
	}
	if len(env.issued) != len(it.Ops) {
		t.Fatalf("issued %d of %d ops", len(env.issued), len(it.Ops))
	}
	for i, id := range env.issued {
		if id != ID(i) {
			t.Fatalf("op %d issued at position %d: not canonical order", id, i)
		}
	}
	for i := range it.Ops {
		op := &it.Ops[i]
		// Resolve returned nil for every Ext, so deps passed to Issue
		// are exactly the in-plan edges (all signals non-nil here).
		if got := env.depCount[op.ID]; got != len(op.Deps) {
			t.Errorf("op %d got %d dep signals, want %d", op.ID, got, len(op.Deps))
		}
		if op.Export != 0 {
			if _, ok := env.exported[ExtDep{Kind: op.Export, Layer: op.Layer}]; !ok {
				t.Errorf("op %d: export %s:L%d not published", op.ID, op.Export, op.Layer)
			}
		}
	}
	// Every external dependency in the plan reached Resolve.
	var wantExt int
	for i := range it.Ops {
		wantExt += len(it.Ops[i].Ext)
	}
	if len(env.resolved) != wantExt {
		t.Errorf("resolved %d external deps, plan carries %d", len(env.resolved), wantExt)
	}
}
