package cluster

import (
	"fmt"

	"stronghold/internal/comm"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// Pipeline parallelism (GPipe-style), the third distributed strategy of
// the paper's background (§II-A, §VII): layers split into stages across
// GPUs, each batch into micro-batches streamed through the pipeline.
// The paper positions STRONGHOLD's conversion (offload → data parallel)
// against partitioned approaches; this model lets the repository
// compare against the pipeline family too.

// PipelineSetup describes a pipeline-parallel run.
type PipelineSetup struct {
	Plat hw.Platform
	Cfg  modelcfg.Config
	// Stages is the pipeline depth; 0 uses one stage per node.
	Stages int
	// MicroBatches per global batch; 0 uses 4× stages (the GPipe
	// guidance for <25% bubble).
	MicroBatches int
}

// PipelineResult extends the iteration result with pipeline-specific
// diagnostics.
type PipelineResult struct {
	perf.IterationResult
	Stages         int
	MicroBatches   int
	BubbleFraction float64 // pipeline fill/drain share of the iteration
}

// RunPipeline simulates one pipeline-parallel training iteration.
func RunPipeline(s PipelineSetup) (PipelineResult, error) {
	cfg := s.Cfg
	cfg.ModelParallel = 1
	if err := cfg.Validate(); err != nil {
		return PipelineResult{}, err
	}
	stages := s.Stages
	if stages == 0 {
		stages = s.Plat.Nodes
	}
	if stages < 1 || stages > cfg.Layers {
		return PipelineResult{}, fmt.Errorf("cluster: %d stages outside [1, %d layers]", stages, cfg.Layers)
	}
	micro := s.MicroBatches
	if micro == 0 {
		micro = 4 * stages
	}
	if micro > cfg.BatchSize {
		// Each micro-batch is at least one sample.
		micro = cfg.BatchSize
	}
	if micro < 1 || cfg.BatchSize%micro != 0 {
		return PipelineResult{}, fmt.Errorf("cluster: batch %d not divisible into %d micro-batches", cfg.BatchSize, micro)
	}

	res := PipelineResult{Stages: stages, MicroBatches: micro}
	res.Method = modelcfg.Megatron // resident per-stage training

	// Capacity: each stage holds layers/stages layers' full model
	// states plus activations for in-flight micro-batches (GPipe keeps
	// up to `stages` micro-batch activations live per stage).
	perStageLayers := (cfg.Layers + stages - 1) / stages
	microCfg := cfg
	microCfg.BatchSize = max(cfg.BatchSize/micro, 1)
	actPerMicro := microCfg.ActivationBytesPerLayer() * int64(perStageLayers)
	stageBytes := int64(perStageLayers)*cfg.LayerParams()*modelcfg.BytesModelState +
		int64(stages)*actPerMicro + microCfg.WorkingActivationBytes() + int64(1)<<30
	if stageBytes > s.Plat.GPU.MemBytes {
		res.OOM = true
		res.OOMDetail = fmt.Sprintf("stage needs %d bytes on a %d-byte GPU", stageBytes, s.Plat.GPU.MemBytes)
		return res, nil
	}
	res.GPUPeak = stageBytes

	// Timing: per-micro-batch stage time = compute of its layers plus
	// the inter-stage activation send. The pipeline processes
	// micro + stages − 1 slots for FP and again for BP, then the
	// optimizer runs per stage.
	m := perf.NewModel(microCfg, s.Plat)
	lt := m.Layer()
	link := fabricLink(s.Plat)
	sendAct := comm.RingAllGather(actPerMicro/int64(perStageLayers), 2, link) // one hop
	stageFP := sim.Time(perStageLayers)*lt.FP + sendAct
	stageBP := sim.Time(perStageLayers)*lt.BP + sendAct
	slots := sim.Time(micro + stages - 1)
	fpTime := slots * stageFP
	bpTime := slots * stageBP
	opt := sim.Time(perStageLayers) * lt.OptGPU
	res.IterTime = fpTime + bpTime + opt + 3*m.EmbeddingTime()

	ideal := sim.Time(micro) * (stageFP + stageBP)
	res.BubbleFraction = 1 - float64(ideal)/float64(fpTime+bpTime)
	return res, nil
}
