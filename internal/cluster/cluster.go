// Package cluster simulates the paper's distributed experiments on the
// 8-node A10 platform: model-parallel training of the offloading
// baselines (Figs. 6b, 7b), STRONGHOLD's model-parallel-to-data-parallel
// conversion with per-layer overlapped gradient all-reduce (§III-F,
// Fig. 12), and the ZeRO-2/ZeRO-3 data-parallel partitioning schemes.
package cluster

import (
	"fmt"

	"stronghold/internal/baselines"
	"stronghold/internal/comm"
	"stronghold/internal/core"
	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// zeroCollectiveEfficiency is the fraction of fabric bandwidth the
// ZeRO partition collectives achieve: fine-grained per-partition
// buckets with synchronization between them are latency-bound at small
// batch (the "extra communication overhead across GPUs and server
// nodes" of §VI-D2). Calibrated against Figure 12's ≥2.6× STRONGHOLD
// advantage on the 3B/bs=1 setup.
const zeroCollectiveEfficiency = 0.04

// Setup describes one distributed run.
type Setup struct {
	Plat   hw.Platform // typically hw.A10ClusterPlatform()
	Cfg    modelcfg.Config
	Method modelcfg.Method
	// HeteroCollectives enables §III-E2 concurrent CPU+GPU collectives
	// for STRONGHOLD (on by default in DefaultSetup).
	HeteroCollectives bool
}

// fabricLink returns the α-β model of one node's NIC.
func fabricLink(p hw.Platform) comm.LinkSpec {
	return comm.LinkSpec{BandwidthBytesPerSec: p.Net.BandwidthPerLink, LatencyNS: p.Net.LatencyNS}
}

// Run simulates one distributed training iteration and returns per-GPU
// timing. Throughput callers multiply by the global batch
// (nodes × per-GPU batch for data-parallel methods).
func Run(s Setup) perf.IterationResult {
	switch s.Method {
	case modelcfg.Stronghold, modelcfg.StrongholdNVMe:
		return runStrongholdDP(s)
	case modelcfg.ZeRO2, modelcfg.ZeRO3:
		return runZeRO(s)
	default:
		return runModelParallelBaseline(s)
	}
}

// runStrongholdDP: the §III-F conversion — every node holds the whole
// model through offloading and the nodes run data parallelism. The
// per-layer gradient all-reduce overlaps with BP; heterogeneous
// collectives let the CPU-side gradient traffic proceed concurrently
// with the GPU-side one.
func runStrongholdDP(s Setup) perf.IterationResult {
	cfg := s.Cfg
	cfg.ModelParallel = 1 // prefer full model per node (the §III-F conversion)
	fits := modelcfg.Footprint(s.Method, cfg, 8, 1).
		Fits(s.Plat.GPU.MemBytes, s.Plat.CPU.UsableMemBytes, s.Plat.NVMe.Bytes)
	if !fits && s.Cfg.ModelParallel > 1 {
		// Model too large for one node even with offloading: fall back
		// to tensor model parallelism over sharded working windows
		// (Table I's MP=8 rows; this is how the 82.1B maximum of
		// Fig. 6b actually trains).
		return runStrongholdMP(s)
	}
	m := perf.NewModel(cfg, s.Plat)
	eng := core.NewEngine(m)
	if s.Method == modelcfg.StrongholdNVMe {
		eng.Feat.UseNVMe = true
	}
	res := eng.Run(3, nil)
	if res.OOM {
		return res
	}
	// Per-layer gradient all-reduce across nodes, overlapped with the
	// layer's BP compute.
	link := fabricLink(s.Plat)
	lt := m.Layer()
	gpuBytes := cfg.LayerGradBytes()
	perLayerAR := comm.RingAllReduce(gpuBytes, s.Plat.Nodes, link)
	if s.HeteroCollectives {
		// GPU-resident and CPU-resident gradient halves all-reduce
		// concurrently (§III-E2): the wall cost is the max of two
		// half-size collectives.
		_, concurrent := comm.HeterogeneousAllReduce(gpuBytes/2, gpuBytes/2, s.Plat.Nodes, link, link)
		perLayerAR = concurrent
	}
	exposed := max(0, perLayerAR-lt.BP)
	res.IterTime += sim.Time(cfg.Layers) * exposed
	return res
}

// runStrongholdMP: sharded offloading under tensor model parallelism —
// each GPU's working window holds layer *slices* (§III-C), and every
// layer adds the model-parallel activation all-reduces.
func runStrongholdMP(s Setup) perf.IterationResult {
	m := perf.NewModel(s.Cfg, s.Plat)
	eng := core.NewEngine(m)
	if s.Method == modelcfg.StrongholdNVMe {
		eng.Feat.UseNVMe = true
	}
	res := eng.Run(3, nil)
	if res.OOM {
		return res
	}
	link := fabricLink(s.Plat)
	actBytes := int64(s.Cfg.BatchSize) * int64(s.Cfg.SeqLen) * int64(s.Cfg.Hidden) * 4
	perLayer := 4 * comm.RingAllReduce(actBytes, s.Cfg.ModelParallel, link)
	lt := m.Layer()
	// STRONGHOLD overlaps the collectives with each layer's compute.
	exposed := max(0, perLayer-(lt.FP+lt.BP)/2)
	res.IterTime += sim.Time(s.Cfg.Layers) * exposed
	return res
}

// runZeRO: data-parallel training with partitioned states. ZeRO-2
// reduce-scatters gradients and all-gathers updated parameters every
// iteration; ZeRO-3 additionally all-gathers parameters during FP and
// BP. The partition collectives run at zeroCollectiveEfficiency of the
// fabric.
func runZeRO(s Setup) perf.IterationResult {
	res := perf.IterationResult{Method: s.Method}
	cfg := s.Cfg
	cfg.ModelParallel = 1 // full replica compute; states partitioned
	if err := cfg.Validate(); err != nil {
		res.OOM, res.OOMDetail = true, err.Error()
		return res
	}
	w := s.Plat.Nodes
	shardCfg := cfg
	shardCfg.ModelParallel = w // reuse the footprint's partition math
	fp := modelcfg.Footprint(s.Method, shardCfg, 0, 1)
	if fp.GPU > s.Plat.GPU.MemBytes {
		res.OOM = true
		res.OOMDetail = fmt.Sprintf("%s per-GPU footprint %d exceeds %d", s.Method, fp.GPU, s.Plat.GPU.MemBytes)
		return res
	}
	res.GPUPeak = fp.GPU

	m := perf.NewModel(cfg, s.Plat)
	lt := m.Layer()
	n := sim.Time(cfg.Layers)
	compute := n*(lt.FP+lt.BP) + 3*m.EmbeddingTime() + n*lt.OptGPU/sim.Time(w)

	link := fabricLink(s.Plat)
	link.BandwidthBytesPerSec *= zeroCollectiveEfficiency
	paramBytes := cfg.TotalParams() * modelcfg.BytesParam
	commTime := comm.RingReduceScatter(paramBytes, w, link) + // gradients
		comm.RingAllGather(paramBytes, w, link) // updated params
	if s.Method == modelcfg.ZeRO3 {
		// Parameters are partitioned too: gather them for FP and again
		// for BP.
		commTime += 2 * comm.RingAllGather(paramBytes, w, link)
	}
	// Bucketed collectives overlap partially with compute.
	res.IterTime = compute + commTime/2 + max(0, commTime/2-compute/4)
	return res
}

// runModelParallelBaseline: Megatron/L2L/ZeRO-Offload/ZeRO-Infinity
// under tensor model parallelism — the baselines' single-GPU schedule
// plus the per-layer activation all-reduces model parallelism inserts
// (two per layer per direction).
func runModelParallelBaseline(s Setup) perf.IterationResult {
	m := perf.NewModel(s.Cfg, s.Plat)
	res := baselines.Run(s.Method, m)
	if res.OOM || s.Cfg.ModelParallel <= 1 {
		return res
	}
	link := fabricLink(s.Plat)
	actBytes := int64(s.Cfg.BatchSize) * int64(s.Cfg.SeqLen) * int64(s.Cfg.Hidden) * 4
	perLayer := 4 * comm.RingAllReduce(actBytes, s.Cfg.ModelParallel, link)
	res.IterTime += sim.Time(s.Cfg.Layers) * perLayer
	return res
}

// LargestTrainable sweeps model depth for a method on the cluster
// platform, mirroring Figure 6b's methodology (8-way model parallelism
// for the offloading baselines; STRONGHOLD additionally benefits from
// partitioning its host footprint across nodes).
func LargestTrainable(method modelcfg.Method, plat hw.Platform, hidden int, batchSizes []int) float64 {
	mp := plat.Nodes
	return modelcfg.LargestTrainable(method, hidden, mp, batchSizes, 8,
		plat.GPU.MemBytes, plat.CPU.UsableMemBytes, plat.NVMe.Bytes)
}
