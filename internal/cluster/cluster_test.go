package cluster

import (
	"testing"

	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
)

func a10Setup(method modelcfg.Method, cfg modelcfg.Config) Setup {
	return Setup{Plat: hw.A10ClusterPlatform(), Cfg: cfg, Method: method, HeteroCollectives: true}
}

func TestFigure12StrongholdBeatsZeRO(t *testing.T) {
	// The 3B model with bs=1/GPU — the largest ZeRO-2 supports. All
	// methods are data-parallel here, so per-GPU iteration time
	// compares directly. The paper reports ≥2.6× throughput for
	// STRONGHOLD over ZeRO-2/3.
	cfg := modelcfg.Config3B()
	sh := Run(a10Setup(modelcfg.Stronghold, cfg))
	z2 := Run(a10Setup(modelcfg.ZeRO2, cfg))
	z3 := Run(a10Setup(modelcfg.ZeRO3, cfg))
	if sh.OOM || z2.OOM || z3.OOM {
		t.Fatalf("no method should OOM on 3B: sh=%v z2=%v z3=%v", sh.OOMDetail, z2.OOMDetail, z3.OOMDetail)
	}
	shVsZ2 := float64(z2.IterTime) / float64(sh.IterTime)
	if shVsZ2 < 2.0 {
		t.Fatalf("STRONGHOLD only %.2fx over ZeRO-2; paper reports ≥2.6x", shVsZ2)
	}
	if z3.IterTime <= z2.IterTime {
		t.Fatal("ZeRO-3's extra parameter gathers must cost more than ZeRO-2")
	}
}

func TestFigure6bLargestTrainableOrdering(t *testing.T) {
	plat := hw.A10ClusterPlatform()
	batch := []int{2, 4}
	best := func(method modelcfg.Method) float64 {
		top := 0.0
		for _, h := range []int{5120, 8192} {
			if b := LargestTrainable(method, plat, h, batch); b > top {
				top = b
			}
		}
		return top
	}
	mega := best(modelcfg.Megatron)
	l2l := best(modelcfg.L2L)
	zoff := best(modelcfg.ZeROOffload)
	zinf := best(modelcfg.ZeROInfinity)
	sh := best(modelcfg.Stronghold)
	if !(mega < l2l && mega < zoff) {
		t.Fatalf("offloading must beat Megatron: mega=%.1f l2l=%.1f zoff=%.1f", mega, l2l, zoff)
	}
	if !(zinf > zoff && sh > zinf) {
		t.Fatalf("scalability ordering violated: zoff=%.1f zinf=%.1f sh=%.1f", zoff, zinf, sh)
	}
	// Headline magnitudes: ZeRO-Infinity 56.9B, STRONGHOLD 82.1B (±25%).
	if sh < 62 || sh > 103 {
		t.Errorf("STRONGHOLD cluster max %.1fB, paper 82.1B", sh)
	}
	if zinf < 43 || zinf > 71 {
		t.Errorf("ZeRO-Infinity cluster max %.1fB, paper 56.9B", zinf)
	}
}

func TestHeteroCollectivesHelp(t *testing.T) {
	cfg := modelcfg.Config3B()
	cfg.BatchSize = 1
	with := a10Setup(modelcfg.Stronghold, cfg)
	without := with
	without.HeteroCollectives = false
	rWith := Run(with)
	rWithout := Run(without)
	if rWith.IterTime > rWithout.IterTime {
		t.Fatalf("heterogeneous collectives must not slow training: %d vs %d",
			rWith.IterTime, rWithout.IterTime)
	}
}

func TestModelParallelBaselineAddsCommCost(t *testing.T) {
	cfg := modelcfg.NewConfig(24, 5120, 16)
	mp8 := cfg
	mp8.ModelParallel = 8
	r8 := Run(a10Setup(modelcfg.ZeROInfinity, mp8))
	if r8.OOM {
		t.Fatalf("7.8B MP=8 should fit: %s", r8.OOMDetail)
	}
	// The same model without MP on a single node must OOM or, if it
	// fits, run without collective overhead. Here we simply assert the
	// MP run includes communication: its time must exceed the pure
	// baseline share.
	if r8.IterTime <= 0 {
		t.Fatal("no time")
	}
}

func TestZeROInvalidConfig(t *testing.T) {
	cfg := modelcfg.Config3B()
	cfg.Hidden = 0
	if r := Run(a10Setup(modelcfg.ZeRO2, cfg)); !r.OOM {
		t.Fatal("invalid config must fail")
	}
}

func TestZeRO2OOMsOnLargeModel(t *testing.T) {
	// ZeRO-2 keeps a full parameter replica per GPU: a 24GB A10 caps it
	// a little above 3B (the Figure 12 premise).
	cfg := modelcfg.ConfigForSize(8, 2560, 1)
	cfg.BatchSize = 1
	if r := Run(a10Setup(modelcfg.ZeRO2, cfg)); !r.OOM {
		t.Fatal("8B must exceed ZeRO-2's per-GPU capacity")
	}
	if r := Run(a10Setup(modelcfg.ZeRO3, modelcfg.ConfigForSize(8, 2560, 1))); r.OOM {
		t.Fatalf("ZeRO-3 partitions parameters and should fit 8B: %s", r.OOMDetail)
	}
}

func TestPipelineRunsAndBubble(t *testing.T) {
	cfg := modelcfg.ConfigForSize(10, 2560, 1)
	cfg.BatchSize = 16
	r, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM {
		t.Fatalf("10B over 8 stages should fit: %s", r.OOMDetail)
	}
	if r.Stages != 8 || r.MicroBatches != 16 {
		t.Fatalf("defaults wrong: stages=%d micro=%d", r.Stages, r.MicroBatches)
	}
	// GPipe bubble: (s-1)/(m+s-1) = 7/23 ≈ 0.30.
	if r.BubbleFraction < 0.25 || r.BubbleFraction > 0.35 {
		t.Fatalf("bubble %v, want ~0.30", r.BubbleFraction)
	}
}

func TestPipelineMoreMicroBatchesShrinkBubble(t *testing.T) {
	// 5B keeps per-stage states small enough that both micro-batch
	// settings fit (in-flight activations scale with stages x micro
	// batch size).
	cfg := modelcfg.ConfigForSize(5, 2560, 1)
	cfg.BatchSize = 64
	few, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg, MicroBatches: 16})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg, MicroBatches: 64})
	if err != nil {
		t.Fatal(err)
	}
	if few.OOM || many.OOM {
		t.Fatalf("both settings must fit: few=%s many=%s", few.OOMDetail, many.OOMDetail)
	}
	if many.BubbleFraction >= few.BubbleFraction {
		t.Fatalf("bubble must shrink with micro-batches: %v vs %v", many.BubbleFraction, few.BubbleFraction)
	}
}

func TestPipelineCapacityBound(t *testing.T) {
	// A 100B model over 8 stages: 12.5B of FP32 states per 24GB GPU OOMs.
	cfg := modelcfg.ConfigForSize(100, 2560, 1)
	r, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OOM {
		t.Fatal("100B must exceed pipeline stage capacity")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := modelcfg.Config1p7B()
	if _, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg, Stages: 100}); err == nil {
		t.Fatal("stages beyond layers must be rejected")
	}
	bad := cfg
	bad.Hidden = 0
	if _, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: bad}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	odd := cfg
	odd.BatchSize = 10
	if _, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: odd, MicroBatches: 3}); err == nil {
		t.Fatal("indivisible micro-batching must be rejected")
	}
}

func TestStrongholdBeatsPipelineWhenModelFitsNode(t *testing.T) {
	// The §III-F story extends to pipelines: when offloading fits the
	// model on one node, data parallelism beats a bubbled pipeline.
	cfg := modelcfg.ConfigForSize(10, 2560, 1)
	cfg.BatchSize = 8
	pipe, err := RunPipeline(PipelineSetup{Plat: hw.A10ClusterPlatform(), Cfg: cfg})
	if err != nil || pipe.OOM {
		t.Fatalf("pipeline failed: %v %s", err, pipe.OOMDetail)
	}
	sh := Run(a10Setup(modelcfg.Stronghold, cfg))
	if sh.OOM {
		t.Fatalf("SH failed: %s", sh.OOMDetail)
	}
	// Per-iteration global throughput: pipeline processes one batch per
	// iteration on 8 GPUs; SH-DP processes 8 batches.
	pipeSPS := pipe.Throughput(cfg.BatchSize)
	shSPS := sh.Throughput(cfg.BatchSize * 8)
	if shSPS <= pipeSPS {
		t.Fatalf("SH-DP (%v) should out-throughput the pipeline (%v)", shSPS, pipeSPS)
	}
}
