package baselines

import (
	"fmt"

	"stronghold/internal/fault"
	"stronghold/internal/perf"
	"stronghold/internal/plan"
	"stronghold/internal/sim"
	"stronghold/internal/trace"
)

// Options configures a baseline simulation beyond the defaults.
type Options struct {
	// Trace, when non-nil, receives the execution spans of the simulated
	// iteration (plan-driven methods only; the closed-form methods have
	// no event timeline to record).
	Trace *trace.Trace
	// Faults, when non-nil, degrades the plan-driven methods' resources
	// with the injected stall/slow/drop windows. Baselines have no
	// reissue path, so drops degrade to stalls — the comparison point
	// for STRONGHOLD's degraded-mode scheduling.
	Faults *fault.Plan
}

// planEnv is the explicit-duration execution environment the baseline
// plans run against: plain FIFO resources for the GPU kernel queue, the
// host-side software loop, the two PCIe directions, the NVMe device and
// the CPU optimizer. Every op is issued by its DurNS; bytes and flops
// on the ops are documentation (and validator input), not physics.
type planEnv struct {
	eng    *sim.Engine
	queues []*sim.Resource // plan queue index → resource (0 gpu, 1 host)
	h2d    *sim.Resource
	d2h    *sim.Resource
	nvme   *sim.Resource
	cpuOpt *sim.Resource
	tr     *trace.Trace
	err    error
}

func newPlanEnv(eng *sim.Engine, queues int, tr *trace.Trace) *planEnv {
	e := &planEnv{
		eng:    eng,
		h2d:    sim.NewResource(eng, "pcie-h2d"),
		d2h:    sim.NewResource(eng, "pcie-d2h"),
		nvme:   sim.NewResource(eng, "nvme"),
		cpuOpt: sim.NewResource(eng, "cpu-opt"),
		tr:     tr,
	}
	names := []string{"gpu", "host"}
	for q := 0; q < queues; q++ {
		name := fmt.Sprintf("q%d", q)
		if q < len(names) {
			name = names[q]
		}
		e.queues = append(e.queues, sim.NewResource(eng, name))
	}
	return e
}

// degrade installs the injector's stretch hooks on every resource a
// baseline plan can occupy.
func (e *planEnv) degrade(inj *fault.Injector) {
	e.h2d.SetStretch(inj.StretchAll(fault.H2D))
	e.d2h.SetStretch(inj.StretchAll(fault.D2H))
	e.nvme.SetStretch(inj.StretchAll(fault.NVMe))
	e.cpuOpt.SetStretch(inj.StretchAll(fault.CPU))
}

func (e *planEnv) Issue(op *plan.Op, deps []*sim.Signal) *sim.Signal {
	switch op.Kind {
	case plan.ComputeFP, plan.ComputeBP:
		return e.timed(e.queues[op.Queue], op, trace.KindCompute, deps)
	case plan.OptStep:
		if op.GPU {
			return e.timed(e.queues[op.Queue], op, trace.KindOptimize, deps)
		}
		return e.timed(e.cpuOpt, op, trace.KindOptimize, deps)
	case plan.Prefetch:
		return e.timed(e.h2d, op, trace.KindH2D, deps)
	case plan.Offload:
		return e.timed(e.d2h, op, trace.KindD2H, deps)
	case plan.NVMeStage:
		return e.timed(e.nvme, op, trace.KindNVMe, deps)
	case plan.BufAcquire, plan.BufRelease, plan.Join:
		// No device pool here: buffer ops and joins are pure ordering
		// points, but executing them keeps the validated plan and the
		// executed schedule the same object.
		sig := sim.NewSignal(e.eng)
		sim.WaitAll(e.eng, deps, sig.Fire)
		return sig
	default:
		if e.err == nil {
			e.err = fmt.Errorf("baselines: op kind %s unsupported by the explicit-duration environment", op.Kind)
		}
		return sim.FiredSignal(e.eng)
	}
}

func (e *planEnv) timed(r *sim.Resource, op *plan.Op, kind trace.Kind, deps []*sim.Signal) *sim.Signal {
	name, layer := op.Name, op.Layer
	return r.SubmitAfter(deps, op.DurNS, func(start, end sim.Time) {
		if e.tr != nil {
			e.tr.Add(trace.Span{Track: r.Name(), Name: name, Kind: kind,
				Layer: layer, Start: start, End: end})
		}
	})
}

// Resolve: baseline plans are steady-state single iterations with no
// cross-iteration dependencies; every external fact already holds.
func (e *planEnv) Resolve(plan.ExtDep) *sim.Signal { return nil }

// Export: nothing consumes cross-iteration facts here.
func (e *planEnv) Export(*plan.Op, *sim.Signal) {}

// runPlanned validates and executes one baseline plan, filling res with
// the simulated timing, overlap and diagnostics.
func runPlanned(it *plan.Iteration, opts Options, res *perf.IterationResult) {
	if err := plan.Validate(it); err != nil {
		res.OOM, res.OOMDetail = true, err.Error()
		return
	}
	var inj *fault.Injector
	if !opts.Faults.Empty() {
		var err error
		if inj, err = fault.NewInjector(opts.Faults); err != nil {
			res.OOM, res.OOMDetail = true, err.Error()
			return
		}
	}
	eng := sim.NewEngine()
	tr := opts.Trace
	if tr == nil {
		tr = trace.New() // overlap is computed from the trace either way
	}
	env := newPlanEnv(eng, it.Queues, tr)
	if inj != nil {
		env.degrade(inj)
	}
	plan.Execute(it, env)
	eng.Run()
	if env.err != nil {
		res.OOM, res.OOMDetail = true, env.err.Error()
		return
	}
	res.IterTime = eng.Now()
	res.Steps = eng.Steps()
	res.PlanOps = uint64(len(it.Ops))
	res.Overlap = tr.OverlapFraction(
		[]trace.Kind{trace.KindCompute},
		[]trace.Kind{trace.KindH2D, trace.KindD2H, trace.KindNVMe})
}
