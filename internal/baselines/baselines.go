// Package baselines implements the competing training systems the
// paper evaluates against (§V-C): Megatron-LM (resident GPU training),
// L2L (synchronous one-layer offloading), ZeRO-Offload (static
// CPU-optimizer offloading), ZeRO-Infinity (partitioned states on
// CPU RAM or NVMe) and the interleaved optimizer offloading of Deep
// Optimizer States. Every baseline is costed from the same perf.Model
// kernel/transfer numbers the STRONGHOLD engine uses, plus per-method
// software-stack constants calibrated in calib.go — the comparisons
// differ in *scheduling and stack overheads*, never in kernel speed.
// Dispatch goes through the modelcfg method registry: every
// plan-driven method runs as a planner-emitted plan (planner.go,
// strategies.go) on the shared plan executor over explicit-duration
// resources (planrun.go), so it produces real traces, overlap
// fractions and degrades under fault plans; Megatron remains a closed
// form, and the other closed forms below are retained as cross-checks
// for the plan-driven schedules.
package baselines

import (
	"fmt"

	"stronghold/internal/fault"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/sim"
)

// Run simulates one steady-state training iteration of the given method
// and model, returning its timing or an OOM outcome. Supported methods
// are the registry rows with Engine == EngineBaseline: Megatron, L2L,
// ZeROOffload, ZeROInfinity, ZeROInfinityNVMe, InterleavedOpt.
// (ZeRO-2/3 are distributed-only; see the cluster package.)
func Run(method modelcfg.Method, m perf.Model) perf.IterationResult {
	return RunWith(method, m, Options{})
}

// Degradation runs one baseline method twice — clean, then under the
// fault plan — and returns both iteration results. It is the shared
// what-if primitive behind the faultcmp experiment and the
// capacity-planning server's /v1/whatif endpoint: the same schedule
// degraded through the same injected windows, so the pair is directly
// comparable.
func Degradation(method modelcfg.Method, m perf.Model, plan *fault.Plan) (clean, degraded perf.IterationResult) {
	return Run(method, m), RunWith(method, m, Options{Faults: plan})
}

// RunWith is Run with tracing and fault injection. Plan-driven methods
// (every baseline except Megatron) run as planner-emitted plans on the
// shared executor — event-driven, with real traces and overlap;
// Megatron remains a closed-form schedule, for which Options is inert.
func RunWith(method modelcfg.Method, m perf.Model, opts Options) perf.IterationResult {
	res := perf.IterationResult{Method: method}
	if err := m.Cfg.Validate(); err != nil {
		res.OOM, res.OOMDetail = true, err.Error()
		return res
	}
	info := modelcfg.Lookup(method)
	if info == nil || info.Engine != modelcfg.EngineBaseline {
		res.OOM = true
		res.OOMDetail = fmt.Sprintf("baselines: unsupported method %s", method)
		return res
	}
	fp := modelcfg.Footprint(method, m.Cfg, 0, 1)
	plat := m.Plat
	if !fp.Fits(plat.GPU.MemBytes, plat.CPU.UsableMemBytes, plat.NVMe.Bytes) {
		res.OOM = true
		res.OOMDetail = fmt.Sprintf("%s footprint gpu=%d host=%d disk=%d exceeds capacity",
			method, fp.GPU, fp.Host, fp.Disk)
		return res
	}
	res.GPUPeak = fp.GPU
	pressure := pressurePenalty(float64(fp.GPU) / float64(plat.GPU.MemBytes))

	if !info.PlanDriven {
		res.IterTime = megatronIter(m)
		return res
	}
	it, err := methodPlan(method, m, pressure)
	if err != nil {
		res.OOM, res.OOMDetail = true, err.Error()
		return res
	}
	runPlanned(it, opts, &res)
	return res
}

// computeTotal is the pure-kernel time every method pays: all layers'
// FP+BP plus the embedding/head work and the GPU-side norm of the loss.
func computeTotal(m perf.Model) sim.Time {
	lt := m.Layer()
	n := sim.Time(m.Cfg.Layers)
	return n*(lt.FP+lt.BP) + 3*m.EmbeddingTime()
}

// megatronIter: everything resident; the only non-kernel cost is the
// on-GPU optimizer sweep.
func megatronIter(m perf.Model) sim.Time {
	lt := m.Layer()
	n := sim.Time(m.Cfg.Layers)
	gpuOptEmbed := sim.Time(float64(m.Cfg.EmbeddingParams()*28) / m.Plat.GPU.MemBandwidth * 1e9)
	return computeTotal(m) + n*lt.OptGPU + gpuOptEmbed
}

// l2lIter is the closed-form cross-check for l2lPlan: one Transformer
// block resident at a time, parameters moved before each layer in both
// directions ("it simply serializes computation with data transfer for
// each DNN layer", §VI-B), with the per-visit software overhead of its
// Python movement loop; the optimizer runs on the GPU over the full
// moment buffers. It prices the gradient copy-back fully serial, so it
// upper-bounds the plan-driven time, which hides that copy under the
// next visit's overhead (see planrun_test.go for the two-sided bound).
func l2lIter(m perf.Model, pressure float64) sim.Time {
	lt := m.Layer()
	n := sim.Time(m.Cfg.Layers)
	unpinned := func(t sim.Time) sim.Time {
		return sim.Time(float64(t) / m.Plat.PCIe.UnpinnedFactor)
	}
	perFP := lt.FP + unpinned(lt.C2G) + sim.Time(float64(l2lVisitOverheadNS)*pressure)
	perBP := lt.BP + unpinned(lt.C2G) + unpinned(lt.G2C) + sim.Time(float64(l2lVisitOverheadNS)*pressure)
	return n*(perFP+perBP) + 3*m.EmbeddingTime() + n*lt.OptGPU
}

// zeroOffloadIter is the closed-form cross-check for zeroOffloadPlan:
// parameters stay on the GPU; gradients stream to the
// CPU during BP (mostly overlapped), the single fused CPU optimizer
// updates all parameters, and updated parameters upload back — the two
// serial phases that cap its efficiency (§VI-B: "a large portion of the
// CPU-GPU data transfer and computation cannot overlap due to their CPU
// optimizer implementation").
func zeroOffloadIter(m perf.Model, pressure float64) sim.Time {
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	grads := sim.Time(float64(params*modelcfg.BytesGrad) / m.Plat.PCIe.BandwidthPerDir * 1e9)
	upload := sim.Time(float64(params*modelcfg.BytesParam) / m.Plat.PCIe.BandwidthPerDir * 1e9)
	opt := sim.Time(float64(params*28) / zeroOffloadCPUAdamBW * 1e9)
	compute := computeTotal(m)
	bpTotal := sim.Time(m.Cfg.Layers) * m.Layer().BP
	exposedGrads := max(0, grads-bpTotal/2)
	overhead := float64(exposedGrads+opt+upload) * pressure
	return compute + sim.Time(overhead)
}

// zeroInfinityIter: every layer's states stream between CPU (or NVMe)
// and GPU each pass with the per-layer refactoring copy (§VI-A), so FP
// and BP each pace at max(kernel, transfer); the CPU optimizer phase is
// half-overlapped like ZeRO-Offload.
func zeroInfinityIter(m perf.Model, pressure float64, nvme bool) sim.Time {
	lt := m.Layer()
	n := sim.Time(m.Cfg.Layers)
	c2g := sim.Time(float64(lt.C2G) * zeroInfinityVolumeFactor)
	g2c := sim.Time(float64(lt.G2C) * zeroInfinityVolumeFactor)
	perFP := max(lt.FP, c2g) + zeroInfinityRefactorNS
	perBP := max(lt.BP, c2g+g2c) + zeroInfinityRefactorNS
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	opt := sim.Time(float64(params*28) / zeroOffloadCPUAdamBW * 1e9 / 2)
	iter := n*(perFP+perBP) + 3*m.EmbeddingTime() + sim.Time(float64(opt)*pressure)
	if nvme {
		// States live on NVMe and are demand-paged per layer with the
		// small-block access pattern that destroys SSD throughput.
		bytes := float64(params*zeroInfinityNVMeBytesPerParam) / float64(m.Cfg.Layers)
		perLayerIO := sim.Time(bytes/(m.Plat.NVMe.ReadBW*zeroInfinityNVMeRandomFactor)*1e9) +
			sim.Time(bytes/(m.Plat.NVMe.WriteBW*zeroInfinityNVMeRandomFactor)*1e9)
		iter += 2 * n * perLayerIO
	}
	return iter
}
