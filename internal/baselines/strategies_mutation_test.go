package baselines

import (
	"strings"
	"testing"

	"stronghold/internal/modelcfg"
	"stronghold/internal/plan"
)

// findOp locates one op of the given kind and name in a plan.
func findOp(t *testing.T, it *plan.Iteration, kind plan.Kind, name string) *plan.Op {
	t.Helper()
	for i := range it.Ops {
		if it.Ops[i].Kind == kind && it.Ops[i].Name == name {
			return &it.Ops[i]
		}
	}
	t.Fatalf("plan has no %s op named %q", kind, name)
	return nil
}

// dropDep removes target from op's dependency list.
func dropDep(t *testing.T, op *plan.Op, target plan.ID) {
	t.Helper()
	for i, d := range op.Deps {
		if d == target {
			op.Deps = append(op.Deps[:i], op.Deps[i+1:]...)
			return
		}
	}
	t.Fatalf("op %q has no dependency on %d", op.Name, target)
}

// TestValidatorRejectsCorruptedNVMePlans corrupts the ZeRO-Infinity
// NVMe schedule's residency discipline one invariant at a time — each
// mutation must be rejected with a diagnostic naming that invariant.
// This is the proof that the NVMe-tier residency rules are enforced,
// not merely satisfied by the planner's current emission.
func TestValidatorRejectsCorruptedNVMePlans(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, it *plan.Iteration)
		wantMsg string
	}{
		{
			// The weight fetch must happen-after the page-in that
			// restaged the layer; dropping the edge lets the fetch read
			// the device ring before the NVMe read has landed.
			name: "fetch loses its restage edge",
			mutate: func(t *testing.T, it *plan.Iteration) {
				fetch := findOp(t, it, plan.Prefetch, "fetch L2")
				restage := findOp(t, it, plan.NVMeStage, "page-in L2")
				dropDep(t, fetch, restage.ID)
			},
			wantMsg: "does not happen-after the restage",
		},
		{
			// Shrinking the staging ring below the plan's concurrency
			// breaks the greedy funding proof: the second page-in has no
			// spare slot and no spill provably completed.
			name: "staging ring over budget",
			mutate: func(t *testing.T, it *plan.Iteration) {
				it.RingSlots = 1
			},
			wantMsg: "may exceed the 1-slot staging ring",
		},
		{
			// A spill must close the epoch its layer's restage opened;
			// retargeting it at an already-evicted layer is a spill of
			// state the ring no longer holds.
			name: "spill of non-staged layer",
			mutate: func(t *testing.T, it *plan.Iteration) {
				spill := findOp(t, it, plan.NVMeStage, "page-out L2")
				spill.Layer = 0 // layer 0's epoch closed at page-out L0
			},
			wantMsg: "not in the staging ring",
		},
		{
			// Flipping a restage into a spill removes the epoch opener:
			// the layer is never staged, so both its fetch and the
			// spurious spill violate ring residency.
			name: "restage flipped to spill",
			mutate: func(t *testing.T, it *plan.Iteration) {
				restage := findOp(t, it, plan.NVMeStage, "page-in L3")
				restage.Write = true
			},
			wantMsg: "not in the staging ring",
		},
		{
			// The device buffer pool is part of the same residency
			// proof: one slot cannot host the two-layer pipeline.
			name: "buffer pool over budget",
			mutate: func(t *testing.T, it *plan.Iteration) {
				it.BudgetSlots = 1
			},
			wantMsg: "may exceed the 1-slot window budget",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it, err := PlanFor(modelcfg.ZeROInfinityNVMe, v100Model(goldenConfig()))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, it)
			err = plan.Validate(it)
			if err == nil {
				t.Fatalf("validator accepted the corrupted plan")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("rejection does not name the invariant:\nwant substring %q\ngot %v", tc.wantMsg, err)
			}
		})
	}
}

// TestValidatorRejectsCorruptedInterleavedPlans corrupts the
// interleaved optimizer placement: fractional coverage, fraction
// ranges, whole/fractional mixing, and the moment-chunk staging
// budget.
func TestValidatorRejectsCorruptedInterleavedPlans(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, it *plan.Iteration)
		wantMsg string
	}{
		{
			// Shrinking one CPU share leaves part of the layer's update
			// unapplied — the fractions no longer cover the layer.
			name: "fractions sum short of 1",
			mutate: func(t *testing.T, it *plan.Iteration) {
				cpu := findOp(t, it, plan.OptStep, "adam L2 cpu")
				cpu.Frac -= 0.1
			},
			wantMsg: "fractional opt-steps sum to 0.9",
		},
		{
			// A share above 1 would apply more than the full update.
			name: "fraction out of range",
			mutate: func(t *testing.T, it *plan.Iteration) {
				gpu := findOp(t, it, plan.OptStep, "adam L2 gpu")
				gpu.Frac = 1.5
			},
			wantMsg: "fraction 1.5 outside (0,1]",
		},
		{
			// Clearing a fraction turns the op into a whole-layer step
			// coexisting with its fractional twin — a double update.
			name: "whole-layer step mixed with fractional",
			mutate: func(t *testing.T, it *plan.Iteration) {
				cpu := findOp(t, it, plan.OptStep, "adam L2 cpu")
				cpu.Frac = 0
			},
			wantMsg: "also has fractional opt-steps",
		},
		{
			// One staging slot cannot hold the double-buffered moment
			// chunks: the second fetch has no writeback to recycle.
			name: "moment staging over budget",
			mutate: func(t *testing.T, it *plan.Iteration) {
				it.OptSlots = 1
			},
			wantMsg: "may exceed the 1-slot moment staging budget",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it, err := PlanFor(modelcfg.InterleavedOpt, v100Model(goldenConfig()))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, it)
			err = plan.Validate(it)
			if err == nil {
				t.Fatalf("validator accepted the corrupted plan")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("rejection does not name the invariant:\nwant substring %q\ngot %v", tc.wantMsg, err)
			}
		})
	}
}
