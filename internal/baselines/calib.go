package baselines

import "stronghold/internal/sim"

// Calibrated software-stack constants. The schedules in baselines.go
// are mechanistic (kernel, PCIe, NVMe and DRAM costs shared with the
// STRONGHOLD engine); these constants encode the per-system software
// inefficiencies the paper *measured* but that cannot be derived from
// hardware first principles. Each is set once, against the paper's
// Figure 8a/7a/1b relative throughputs on the V100 platform, and then
// used unchanged across every experiment. See EXPERIMENTS.md for the
// resulting paper-vs-simulated comparison.
const (
	// l2lVisitOverheadNS is L2L's per-layer-visit cost outside the raw
	// copy: its Python movement loop tears down and re-registers the
	// resident encoder block synchronously on every visit. Calibrated
	// so L2L lands near the paper's 22% of Megatron-LM throughput on
	// the 1.7B model (Fig. 8a) and ~1.9 TFLOPS at its largest model
	// (Fig. 7a).
	l2lVisitOverheadNS = 550_000_000 // 550 ms per layer visit

	// zeroOffloadCPUAdamBW is the effective DRAM bandwidth of
	// ZeRO-Offload's fused CPU Adam (one optimizer instance,
	// partially vectorized), in bytes/s. Calibrated to put ZeRO-Offload
	// near 50% of Megatron-LM on the 1.7B model (Fig. 8a).
	zeroOffloadCPUAdamBW = 6e9

	// zeroInfinityVolumeFactor scales per-layer transfer volume:
	// ZeRO-Infinity moves parameters *and* partition metadata/gradient
	// buffers for its runtime refactoring, roughly twice STRONGHOLD's
	// weight-only prefetch volume.
	zeroInfinityVolumeFactor = 2.0

	// zeroInfinityRefactorNS is the per-layer runtime model-refactoring
	// cost (gather + copy into the fused buffer) the paper identifies
	// in §VI-A. Calibrated against Fig. 8a's "less than 57% of
	// Megatron" for ZeRO-Infinity on CPU RAM.
	zeroInfinityRefactorNS = sim.Time(120_000_000) // 120 ms per layer per pass

	// zeroInfinityNVMeBytesPerParam is the per-iteration NVMe traffic
	// of ZeRO-Infinity's NVMe mode (FP16 working copies, FP32 masters
	// and moments in, updated states out).
	zeroInfinityNVMeBytesPerParam = 24

	// zeroInfinityNVMeRandomFactor is the fraction of sequential SSD
	// bandwidth ZeRO-Infinity's per-partition demand paging achieves —
	// the small-block, synchronization-heavy access pattern behind the
	// paper's "prohibitively long training time" with NVMe (Fig. 1b:
	// >800× below Megatron; Fig. 10: ≥8× below STRONGHOLD's staged
	// sequential I/O).
	zeroInfinityNVMeRandomFactor = 0.15

	// interleavedGPUShare is the fraction of each layer's optimizer
	// update Deep Optimizer States places on the GPU: its subgroup
	// partitioning balances the device stream against the host update so
	// both drain under the remaining backward compute (the paper's
	// near-even split on PCIe-attached devices).
	interleavedGPUShare = 0.5

	// interleavedCPUAdamBW is the effective DRAM bandwidth of the
	// interleaved method's CPU subgroup updates, in bytes/s. Higher than
	// zeroOffloadCPUAdamBW because the subgroup layout streams moments
	// through contiguous pinned staging buffers instead of walking the
	// full fused-optimizer working set.
	interleavedCPUAdamBW = 8e9
)

// pressurePenalty models allocator behaviour near device-memory
// capacity: above 85% occupancy the PyTorch caching allocator starts
// thrashing (cache flushes, re-splitting, synchronous cudaFree), which
// is why every baseline's throughput collapses at its *largest*
// trainable model (the Fig. 7a measurements). Below the threshold the
// penalty is 1; it ramps linearly to 3× at 100% occupancy. STRONGHOLD
// avoids the regime by construction — its working window keeps
// occupancy low (§III-E3).
func pressurePenalty(occupancy float64) float64 {
	const knee, maxPenalty = 0.85, 3.0
	if occupancy <= knee {
		return 1
	}
	if occupancy > 1 {
		occupancy = 1
	}
	return 1 + (occupancy-knee)/(1-knee)*(maxPenalty-1)
}
