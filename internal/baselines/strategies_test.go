package baselines

import (
	"testing"

	"stronghold/internal/fault"
	"stronghold/internal/modelcfg"
	"stronghold/internal/sim"
	"stronghold/internal/trace"
)

// Every strategy planner output must pass the validator, including the
// NVMe ring and fractional-placement proofs the new plans exercise.
func TestStrategyPlansValidate(t *testing.T) {
	for _, cfg := range []modelcfg.Config{modelcfg.Config1p7B(), modelcfg.Config4B()} {
		m := v100Model(cfg)
		for _, meth := range []modelcfg.Method{
			modelcfg.ZeROInfinity, modelcfg.ZeROInfinityNVMe, modelcfg.InterleavedOpt,
		} {
			it, err := PlanFor(meth, m)
			if err != nil {
				t.Errorf("%s plan (%d layers): %v", meth, cfg.Layers, err)
				continue
			}
			if meth == modelcfg.ZeROInfinityNVMe && (!it.NVMe || it.RingSlots != 2) {
				t.Errorf("%s plan must declare the 2-slot staging ring, got nvme=%v ring=%d",
					meth, it.NVMe, it.RingSlots)
			}
			if meth == modelcfg.InterleavedOpt && it.OptSlots != 2 {
				t.Errorf("%s plan must declare the 2-slot moment staging budget, got %d",
					meth, it.OptSlots)
			}
		}
	}
}

// PlanFor only serves plan-driven baseline methods; the closed-form and
// non-baseline registry rows are rejected, as is the baseline engine
// itself when asked to run a core or cluster method.
func TestStrategyDispatchRejectsNonBaseline(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	for _, meth := range []modelcfg.Method{modelcfg.Megatron, modelcfg.Stronghold, modelcfg.ZeRO2} {
		if _, err := PlanFor(meth, m); err == nil {
			t.Errorf("PlanFor(%s) must fail", meth)
		}
	}
	for _, meth := range []modelcfg.Method{modelcfg.Stronghold, modelcfg.StrongholdNVMe, modelcfg.ZeRO3} {
		if r := Run(meth, m); !r.OOM {
			t.Errorf("Run(%s) must report the method unsupported", meth)
		}
	}
}

// The event-driven ZeRO-Infinity schedule tracks its closed form: the
// closed form's steady-state max() hides the pipeline fill and the
// host-loop serialization the executed plan actually pays, so the plan
// lands slightly above it — within 10% — at every model size.
func TestZeroInfinityPlanTracksClosedForm(t *testing.T) {
	for _, cfg := range []modelcfg.Config{modelcfg.Config1p7B(), modelcfg.Config4B()} {
		m := v100Model(cfg)
		got := Run(modelcfg.ZeROInfinity, m)
		if got.OOM {
			t.Fatalf("%d layers: %s", cfg.Layers, got.OOMDetail)
		}
		closed := zeroInfinityIter(m, pressureFor(modelcfg.ZeROInfinity, m), false)
		ratio := float64(got.IterTime) / float64(closed)
		if ratio < 1.0 || ratio > 1.10 {
			t.Errorf("%d layers: plan %d vs closed form %d (ratio %.4f outside [1.0,1.10])",
				cfg.Layers, got.IterTime, closed, ratio)
		}
	}
}

// In NVMe mode the demand paging serializes with compute, so the plan
// reproduces the closed form's additive I/O term — and the collapse the
// paper measures: the staged I/O dominates the iteration.
func TestZeroInfinityNVMePlanTracksClosedForm(t *testing.T) {
	m := v100Model(modelcfg.Config39p5B())
	got := Run(modelcfg.ZeROInfinityNVMe, m)
	if got.OOM {
		t.Fatal(got.OOMDetail)
	}
	closed := zeroInfinityIter(m, pressureFor(modelcfg.ZeROInfinityNVMe, m), true)
	ratio := float64(got.IterTime) / float64(closed)
	if ratio < 0.90 || ratio > 1.05 {
		t.Errorf("plan %d vs closed form %d (ratio %.4f outside [0.90,1.05])", got.IterTime, closed, ratio)
	}
	// The I/O term, not compute, must own the iteration.
	compute := computeTotal(m)
	if got.IterTime < 10*compute {
		t.Errorf("demand paging must dominate: iter %d < 10x compute %d", got.IterTime, compute)
	}
}

// The interleaved schedule hides every subgroup update under the
// remaining backward compute, so the plan matches its closed form
// (compute plus one subgroup drain) to within 2%.
func TestInterleavedOptMatchesClosedForm(t *testing.T) {
	for _, cfg := range []modelcfg.Config{modelcfg.Config1p7B(), modelcfg.Config4B()} {
		m := v100Model(cfg)
		got := Run(modelcfg.InterleavedOpt, m)
		if got.OOM {
			t.Fatalf("%d layers: %s", cfg.Layers, got.OOMDetail)
		}
		closed := interleavedOptIter(m, pressureFor(modelcfg.InterleavedOpt, m))
		ratio := float64(got.IterTime) / float64(closed)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%d layers: plan %d vs closed form %d (ratio %.4f outside [0.98,1.02])",
				cfg.Layers, got.IterTime, closed, ratio)
		}
	}
}

// Interleaving is the method's entire advantage: it must decisively
// beat ZeRO-Offload's serial optimizer phase (the Deep Optimizer
// States comparison point) while staying within a few percent of
// resident Megatron-LM training at sizes where both fit.
func TestInterleavedOptOrdering(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	mega := Run(modelcfg.Megatron, m)
	zo := Run(modelcfg.ZeROOffload, m)
	io := Run(modelcfg.InterleavedOpt, m)
	if mega.OOM || zo.OOM || io.OOM {
		t.Fatalf("OOM: mega=%q zo=%q io=%q", mega.OOMDetail, zo.OOMDetail, io.OOMDetail)
	}
	if speedup := float64(zo.IterTime) / float64(io.IterTime); speedup < 1.5 {
		t.Errorf("interleaved must clearly beat ZeRO-Offload, got %.2fx", speedup)
	}
	rel := float64(mega.IterTime) / float64(io.IterTime)
	if rel < 0.93 || rel > 1.02 {
		t.Errorf("interleaved must track resident training, got %.3f of Megatron", rel)
	}
	if io.Overlap < 0.9 {
		t.Errorf("interleaved transfers must hide under compute, overlap=%.3f", io.Overlap)
	}
}

// The streamed ZeRO-Infinity schedule overlaps about half its transfer
// time under compute — more than L2L's serial loop, far less than
// STRONGHOLD's prefetch pipeline.
func TestZeroInfinityOverlapBand(t *testing.T) {
	r := Run(modelcfg.ZeROInfinity, v100Model(modelcfg.Config1p7B()))
	if r.OOM {
		t.Fatal(r.OOMDetail)
	}
	if r.Overlap < 0.40 || r.Overlap > 0.65 {
		t.Errorf("ZeRO-Infinity overlap %.3f outside [0.40,0.65]", r.Overlap)
	}
}

// Two identical runs of each new strategy must be event-for-event
// identical — the same determinism fingerprint the other plan-driven
// baselines guarantee.
func TestStrategyDeterminism(t *testing.T) {
	for _, tc := range []struct {
		meth modelcfg.Method
		cfg  modelcfg.Config
	}{
		{modelcfg.ZeROInfinity, modelcfg.Config1p7B()},
		{modelcfg.ZeROInfinityNVMe, modelcfg.Config39p5B()},
		{modelcfg.InterleavedOpt, modelcfg.Config1p7B()},
	} {
		m := v100Model(tc.cfg)
		a, b := Run(tc.meth, m), Run(tc.meth, m)
		if a.IterTime != b.IterTime || a.Steps != b.Steps || a.PlanOps != b.PlanOps {
			t.Errorf("%s: nondeterministic runs: %d/%d vs %d/%d", tc.meth, a.IterTime, a.Steps, b.IterTime, b.Steps)
		}
	}
}

// Fault plans degrade the new strategies through the same injector
// hooks as the other plan-driven baselines: a slow NVMe lengthens the
// paging-bound iteration, and slow PCIe/CPU windows lengthen the
// interleaved update chains.
func TestStrategyUnderFaults(t *testing.T) {
	slow := func(target fault.Target) *fault.Plan {
		p := &fault.Plan{Rules: []fault.Rule{{
			Target: target, Kind: fault.Slow, Factor: 0.25,
			At: 0, Dur: sim.FromSeconds(30), Every: sim.FromSeconds(60), Count: 20,
		}}}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		meth   modelcfg.Method
		cfg    modelcfg.Config
		target fault.Target
	}{
		{modelcfg.ZeROInfinityNVMe, modelcfg.Config39p5B(), fault.NVMe},
		{modelcfg.ZeROInfinity, modelcfg.Config1p7B(), fault.H2D},
		{modelcfg.InterleavedOpt, modelcfg.Config1p7B(), fault.CPU},
	} {
		m := v100Model(tc.cfg)
		clean := Run(tc.meth, m)
		hurt := RunWith(tc.meth, m, Options{Faults: slow(tc.target)})
		if hurt.OOM {
			t.Fatalf("%s faulted run failed: %s", tc.meth, hurt.OOMDetail)
		}
		if hurt.IterTime <= clean.IterTime {
			t.Errorf("%s: slow %s did not lengthen the iteration (%d vs %d)",
				tc.meth, tc.target, hurt.IterTime, clean.IterTime)
		}
		again := RunWith(tc.meth, m, Options{Faults: slow(tc.target)})
		if again.IterTime != hurt.IterTime {
			t.Errorf("%s faulted run not deterministic", tc.meth)
		}
	}
}

// The new strategies produce full traces: the spans cover the whole
// iteration, and the NVMe mode records staging spans on the nvme track.
func TestStrategyTraces(t *testing.T) {
	m := v100Model(modelcfg.Config39p5B())
	tr := trace.New()
	r := RunWith(modelcfg.ZeROInfinityNVMe, m, Options{Trace: tr})
	if r.OOM {
		t.Fatal(r.OOMDetail)
	}
	if tr.Makespan() != r.IterTime {
		t.Fatalf("trace makespan %d vs iteration time %d", tr.Makespan(), r.IterTime)
	}
	kinds := map[trace.Kind]bool{}
	for _, s := range tr.Spans() {
		kinds[s.Kind] = true
	}
	for _, k := range []trace.Kind{trace.KindCompute, trace.KindH2D, trace.KindD2H, trace.KindNVMe, trace.KindOptimize} {
		if !kinds[k] {
			t.Errorf("trace missing %s spans", k)
		}
	}

	tr = trace.New()
	r = RunWith(modelcfg.InterleavedOpt, v100Model(modelcfg.Config1p7B()), Options{Trace: tr})
	if r.OOM {
		t.Fatal(r.OOMDetail)
	}
	if tr.Makespan() != r.IterTime {
		t.Fatalf("interleaved trace makespan %d vs iteration time %d", tr.Makespan(), r.IterTime)
	}
}
