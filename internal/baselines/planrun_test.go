package baselines

import (
	"testing"

	"stronghold/internal/fault"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/plan"
	"stronghold/internal/sim"
	"stronghold/internal/trace"
)

func pressureFor(method modelcfg.Method, m perf.Model) float64 {
	fp := modelcfg.Footprint(method, m.Cfg, 0, 1)
	return pressurePenalty(float64(fp.GPU) / float64(m.Plat.GPU.MemBytes))
}

// Every baseline planner output must pass the validator — the same
// pre-simulation gate the STRONGHOLD engine's plans go through.
func TestBaselinePlansValidate(t *testing.T) {
	for _, cfg := range []modelcfg.Config{modelcfg.Config1p7B(), modelcfg.Config4B()} {
		m := v100Model(cfg)
		for name, it := range map[string]*plan.Iteration{
			"l2l":          l2lPlan(m, pressureFor(modelcfg.L2L, m)),
			"zero-offload": zeroOffloadPlan(m, pressureFor(modelcfg.ZeROOffload, m)),
		} {
			if err := plan.Validate(it); err != nil {
				t.Errorf("%s plan (%d layers) invalid: %v", name, cfg.Layers, err)
			}
		}
	}
}

// The L2L closed form prices the gradient copy-back fully serial; the
// plan hides it under the next visit's overhead. The simulated time is
// therefore bracketed: at least closed-form minus the n copy-backs
// (the serial critical path), at most the closed form itself.
func TestL2LPlanBracketsClosedForm(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	p := pressureFor(modelcfg.L2L, m)
	got := Run(modelcfg.L2L, m).IterTime
	closed := l2lIter(m, p)
	g2c := sim.Time(float64(m.Layer().G2C) / m.Plat.PCIe.UnpinnedFactor)
	lower := closed - sim.Time(m.Cfg.Layers)*g2c
	if got < lower || got > closed {
		t.Fatalf("planned L2L %.3fs outside [%.3fs, %.3fs]",
			float64(got)/1e9, float64(lower)/1e9, float64(closed)/1e9)
	}
}

// ZeRO-Offload's gradient stream fits under the backward kernels on the
// evaluation models, so the plan-driven time must land on the closed
// form (compute + optimizer + upload) almost exactly.
func TestZeroOffloadPlanMatchesClosedForm(t *testing.T) {
	for _, cfg := range []modelcfg.Config{modelcfg.Config1p7B(), modelcfg.Config4B()} {
		m := v100Model(cfg)
		p := pressureFor(modelcfg.ZeROOffload, m)
		got := Run(modelcfg.ZeROOffload, m).IterTime
		closed := zeroOffloadIter(m, p)
		if diff := float64(got-closed) / float64(closed); diff < -0.02 || diff > 0.02 {
			t.Fatalf("planned ZeRO-Offload %.3fs vs closed form %.3fs (%+.1f%%)",
				float64(got)/1e9, float64(closed)/1e9, 100*diff)
		}
	}
}

// Plan-driven baselines report a measured overlap fraction from their
// traces: L2L hides roughly a third of its transfer volume (the
// gradient copy-back of its three per-layer copies), ZeRO-Offload about
// half (gradients hidden, the parameter upload exposed).
func TestPlannedBaselineOverlap(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	l2l := Run(modelcfg.L2L, m)
	if l2l.Overlap < 0.2 || l2l.Overlap > 0.45 {
		t.Errorf("L2L overlap %.3f, want ≈1/3", l2l.Overlap)
	}
	if l2l.PlanOps == 0 {
		t.Error("L2L result missing plan length")
	}
	zo := Run(modelcfg.ZeROOffload, m)
	if zo.Overlap < 0.35 || zo.Overlap > 0.65 {
		t.Errorf("ZeRO-Offload overlap %.3f, want ≈1/2", zo.Overlap)
	}
	if zo.PlanOps == 0 {
		t.Error("ZeRO-Offload result missing plan length")
	}
}

// Two runs of the same configuration must be event-for-event identical.
func TestPlannedBaselineDeterminism(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	for _, meth := range []modelcfg.Method{modelcfg.L2L, modelcfg.ZeROOffload} {
		a, b := Run(meth, m), Run(meth, m)
		if a.IterTime != b.IterTime || a.Steps != b.Steps {
			t.Errorf("%s not deterministic: %d/%d steps vs %d/%d", meth,
				a.IterTime, a.Steps, b.IterTime, b.Steps)
		}
		if a.Steps == 0 {
			t.Errorf("%s reports no simulation steps: not event-driven?", meth)
		}
	}
}

// Fault plans degrade plan-driven baselines: a PCIe slow window must
// lengthen the iteration, deterministically.
func TestPlannedBaselineUnderFaults(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	faults := &fault.Plan{Rules: []fault.Rule{{
		Target: fault.H2D, Kind: fault.Slow, Factor: 0.25,
		At: 0, Dur: sim.FromSeconds(30), Every: sim.FromSeconds(60), Count: 20,
	}}}
	if err := faults.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, meth := range []modelcfg.Method{modelcfg.L2L, modelcfg.ZeROOffload} {
		clean := Run(meth, m)
		hurt := RunWith(meth, m, Options{Faults: faults})
		if hurt.OOM {
			t.Fatalf("%s faulted run failed: %s", meth, hurt.OOMDetail)
		}
		if hurt.IterTime <= clean.IterTime {
			t.Errorf("%s: slow H2D did not lengthen the iteration (%d vs %d)",
				meth, hurt.IterTime, clean.IterTime)
		}
		again := RunWith(meth, m, Options{Faults: faults})
		if again.IterTime != hurt.IterTime {
			t.Errorf("%s faulted run not deterministic", meth)
		}
	}
}

// The traced spans account for the whole simulated iteration: the last
// span ends at the reported iteration time.
func TestPlannedBaselineTrace(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	tr := trace.New()
	r := RunWith(modelcfg.L2L, m, Options{Trace: tr})
	if tr.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	if tr.Makespan() != r.IterTime {
		t.Fatalf("trace makespan %d vs iteration time %d", tr.Makespan(), r.IterTime)
	}
	kinds := map[trace.Kind]bool{}
	for _, s := range tr.Spans() {
		kinds[s.Kind] = true
	}
	for _, k := range []trace.Kind{trace.KindCompute, trace.KindH2D, trace.KindD2H, trace.KindOptimize} {
		if !kinds[k] {
			t.Errorf("trace missing %s spans", k)
		}
	}
}
