package baselines

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stronghold/internal/modelcfg"
	"stronghold/internal/plan"
)

var update = flag.Bool("update", false, "rewrite the golden baseline plan fixtures")

// goldenConfig is a small model that still exercises every schedule
// feature: deep enough for the two-slot pipelines and the ring
// recycling edges, small enough that the fixtures stay reviewable.
func goldenConfig() modelcfg.Config {
	return modelcfg.NewConfig(4, 1024, 16)
}

// TestGoldenBaselinePlans pins the canonical text rendering of every
// plan-driven baseline schedule: emission order, op payloads and
// dependency wiring. Any planner or calibration change shows up as a
// fixture diff. Regenerate with
// `go test ./internal/baselines -run TestGoldenBaselinePlans -update`
// and review the diff like any schedule change.
func TestGoldenBaselinePlans(t *testing.T) {
	m := v100Model(goldenConfig())
	for _, method := range []modelcfg.Method{
		modelcfg.L2L, modelcfg.ZeROOffload,
		modelcfg.ZeROInfinity, modelcfg.ZeROInfinityNVMe,
		modelcfg.InterleavedOpt,
	} {
		it, err := PlanFor(method, m)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		got := plan.Text(it)
		path := filepath.Join("testdata", modelcfg.MethodKey(method)+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing fixture (run with -update): %v", method, err)
		}
		if got != string(want) {
			t.Errorf("%s: plan drifted from its golden fixture (run with -update and review)\nwant:\n%s\ngot:\n%s",
				method, want, got)
		}
	}
}
