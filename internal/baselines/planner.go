package baselines

import (
	"fmt"

	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/plan"
	"stronghold/internal/sim"
)

// This file holds the baseline planners: they lower L2L's and
// ZeRO-Offload's schedules into the same plan IR the STRONGHOLD engine
// executes, with explicit per-op durations (Op.DurNS) instead of
// flops/bytes — the baseline environment issues work by time. Running
// the baselines on plans gives them real traces, measured Overlap
// fractions and fault-plan compatibility; the closed forms in
// baselines.go remain as cross-checks (see planrun_test.go).

// l2lPlan is L2L's movement loop as a plan: one Transformer block is
// streamed in before every visit, in both passes, behind the per-visit
// software overhead of its Python tear-down/re-register loop. The
// backward pass offloads each layer's gradients asynchronously — the
// copy-back hides under the next visit's overhead, which is why the
// plan needs two buffer slots (one resident block, one draining) and a
// two-deep release→acquire recycle: a one-deep recycle would put the
// gradient copy back on the critical path.
func l2lPlan(m perf.Model, pressure float64) *plan.Iteration {
	lt := m.Layer()
	n := m.Cfg.Layers
	weight := m.Cfg.LayerWeightBytes()
	unpinned := func(t sim.Time) sim.Time {
		return sim.Time(float64(t) / m.Plat.PCIe.UnpinnedFactor)
	}
	visit := sim.Time(float64(l2lVisitOverheadNS) * pressure)
	embed := m.EmbeddingTime()

	it := &plan.Iteration{Layers: n, Window: 1, Queues: 2, BudgetSlots: 2}
	add := func(op plan.Op) plan.ID {
		op.ID = plan.ID(len(it.Ops))
		it.Ops = append(it.Ops, op)
		return op.ID
	}

	embedFP := add(plan.Op{Kind: plan.ComputeFP, Name: "fp embed",
		Layer: -1, Queue: 0, DurNS: embed})

	fpKernel := make([]plan.ID, n)
	fpRelease := make([]plan.ID, n)
	prev := embedFP
	for i := 0; i < n; i++ {
		var acqDeps []plan.ID
		if i >= 2 {
			acqDeps = []plan.ID{fpRelease[i-2]}
		}
		acq := add(plan.Op{Kind: plan.BufAcquire, Name: fmt.Sprintf("acquire L%d", i),
			Layer: i, Queue: -1, Bytes: weight, Deps: acqDeps})
		v := add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("visit L%d", i),
			Layer: i, Queue: 1, DurNS: visit, Deps: []plan.ID{prev, acq}})
		up := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("upload L%d", i),
			Layer: i, Queue: -1, Bytes: weight, DurNS: unpinned(lt.C2G), Deps: []plan.ID{v}})
		fpKernel[i] = add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("fp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.FP, Deps: []plan.ID{up}})
		fpRelease[i] = add(plan.Op{Kind: plan.BufRelease, Name: fmt.Sprintf("release L%d", i),
			Layer: i, Queue: -1, Deps: []plan.ID{fpKernel[i]}})
		prev = fpKernel[i]
	}

	head := add(plan.Op{Kind: plan.ComputeFP, Name: "fp head+loss",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})

	bpRelease := make([]plan.ID, n)
	prev = head
	for i := n - 1; i >= 0; i-- {
		// The acquire recycles a slot released two visits earlier (the
		// async gradient offload means the previous layer's slot may
		// still be draining); the previous backward kernel keeps the
		// claim inside the backward pass.
		acqDeps := []plan.ID{fpRelease[i]}
		if i+2 <= n-1 {
			acqDeps = append(acqDeps, bpRelease[i+2])
		} else {
			acqDeps = append(acqDeps, prev)
		}
		acq := add(plan.Op{Kind: plan.BufAcquire, Name: fmt.Sprintf("bp acquire L%d", i),
			Layer: i, Queue: -1, Bytes: weight, Deps: acqDeps})
		v := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp visit L%d", i),
			Layer: i, Queue: 1, DurNS: visit, Deps: []plan.ID{prev, acq}})
		up := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("bp upload L%d", i),
			Layer: i, Queue: -1, Bytes: weight, DurNS: unpinned(lt.C2G), Deps: []plan.ID{v}})
		k := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.BP, Deps: []plan.ID{up}})
		grad := add(plan.Op{Kind: plan.Offload, Name: fmt.Sprintf("grad offload L%d", i),
			Layer: i, Queue: -1, Bytes: weight, DurNS: unpinned(lt.G2C), Deps: []plan.ID{k}})
		bpRelease[i] = add(plan.Op{Kind: plan.BufRelease, Name: fmt.Sprintf("bp release L%d", i),
			Layer: i, Queue: -1, Deps: []plan.ID{grad}})
		prev = k
	}

	bpEmbed := add(plan.Op{Kind: plan.ComputeBP, Name: "bp embed",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})
	add(plan.Op{Kind: plan.OptStep, Name: "gpu adam sweep", GPU: true,
		Layer: -1, Queue: 0, DurNS: sim.Time(n) * lt.OptGPU, Deps: []plan.ID{bpEmbed}})
	return it
}

// zeroOffloadPlan is ZeRO-Offload's schedule as a plan: parameters stay
// resident on the GPU (the whole layer range is entry- and
// exit-resident, so the plan has no buffer traffic), gradients stream
// to the host per layer during the backward pass, then the single fused
// CPU Adam runs over all parameters and the updated parameters upload
// back — the two serial phases that cap its efficiency. The pressure
// penalty stretches the allocator-sensitive phases (transfers and the
// host round-trip), matching the closed form's overhead term.
func zeroOffloadPlan(m perf.Model, pressure float64) *plan.Iteration {
	lt := m.Layer()
	n := m.Cfg.Layers
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	gradBytes := params * modelcfg.BytesGrad / int64(n)
	uploadBytes := params * modelcfg.BytesParam / int64(n)
	perDir := m.Plat.PCIe.BandwidthPerDir
	dur := func(bytes int64) sim.Time {
		return sim.Time(float64(bytes) / perDir * 1e9 * pressure)
	}
	optDur := sim.Time(float64(params*28) / zeroOffloadCPUAdamBW * 1e9 * pressure)
	embed := m.EmbeddingTime()

	resident := make([]int, n)
	for i := range resident {
		resident[i] = i
	}
	it := &plan.Iteration{
		Layers: n, Window: n, Queues: 1,
		EntryResident: resident, ExitResident: resident,
	}
	add := func(op plan.Op) plan.ID {
		op.ID = plan.ID(len(it.Ops))
		it.Ops = append(it.Ops, op)
		return op.ID
	}

	prev := add(plan.Op{Kind: plan.ComputeFP, Name: "fp embed",
		Layer: -1, Queue: 0, DurNS: embed})
	for i := 0; i < n; i++ {
		prev = add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("fp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.FP, Deps: []plan.ID{prev}})
	}
	prev = add(plan.Op{Kind: plan.ComputeFP, Name: "fp head+loss",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})

	grads := make([]plan.ID, 0, n)
	for i := n - 1; i >= 0; i-- {
		k := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.BP, Deps: []plan.ID{prev}})
		grads = append(grads, add(plan.Op{Kind: plan.Offload, Name: fmt.Sprintf("grad offload L%d", i),
			Layer: i, Queue: -1, Bytes: gradBytes, DurNS: dur(gradBytes), Deps: []plan.ID{k}}))
		prev = k
	}
	bpEmbed := add(plan.Op{Kind: plan.ComputeBP, Name: "bp embed",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})

	opt := add(plan.Op{Kind: plan.OptStep, Name: "cpu adam fused",
		Layer: -1, Queue: -1, DurNS: optDur,
		Deps: append(append([]plan.ID(nil), grads...), bpEmbed)})
	for i := 0; i < n; i++ {
		add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("param upload L%d", i),
			Layer: i, Queue: -1, Bytes: uploadBytes, DurNS: dur(uploadBytes),
			Deps: []plan.ID{opt}})
	}
	return it
}
