package baselines

import (
	"testing"

	"stronghold/internal/hw"
	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
)

func v100Model(cfg modelcfg.Config) perf.Model {
	return perf.NewModel(cfg, hw.V100Platform())
}

func TestAllBaselinesRunOn1p7B(t *testing.T) {
	for _, m := range []modelcfg.Method{
		modelcfg.Megatron, modelcfg.L2L, modelcfg.ZeROOffload,
		modelcfg.ZeROInfinity, modelcfg.ZeROInfinityNVMe,
	} {
		r := Run(m, v100Model(modelcfg.Config1p7B()))
		if r.OOM {
			t.Fatalf("%s OOM on 1.7B: %s", m, r.OOMDetail)
		}
		if r.IterTime <= 0 {
			t.Fatalf("%s produced no time", m)
		}
	}
}

func TestMegatronOOMsBeyond2B(t *testing.T) {
	r := Run(modelcfg.Megatron, v100Model(modelcfg.Config4B()))
	if !r.OOM {
		t.Fatal("Megatron must OOM on 4B with 32GB")
	}
}

func TestOffloadersOutliveMegatron(t *testing.T) {
	cfg := modelcfg.Config4B()
	for _, m := range []modelcfg.Method{modelcfg.L2L, modelcfg.ZeROOffload, modelcfg.ZeROInfinity} {
		if r := Run(m, v100Model(cfg)); r.OOM {
			t.Fatalf("%s should train 4B: %s", m, r.OOMDetail)
		}
	}
}

// TestFigure8aOrdering pins the relative throughputs on the common
// 1.7B model: Megatron fastest among baselines; L2L ≈ 20-30% of
// Megatron; ZeRO-Offload and ZeRO-Infinity below 60%.
func TestFigure8aOrdering(t *testing.T) {
	m := v100Model(modelcfg.Config1p7B())
	mega := Run(modelcfg.Megatron, m)
	rel := func(method modelcfg.Method) float64 {
		return float64(mega.IterTime) / float64(Run(method, m).IterTime)
	}
	l2l := rel(modelcfg.L2L)
	if l2l < 0.15 || l2l > 0.35 {
		t.Fatalf("L2L at %.2f of Megatron, paper says ≈0.22", l2l)
	}
	zo := rel(modelcfg.ZeROOffload)
	if zo < 0.30 || zo > 0.60 {
		t.Fatalf("ZeRO-Offload at %.2f of Megatron, paper says <0.57", zo)
	}
	zi := rel(modelcfg.ZeROInfinity)
	if zi < 0.25 || zi > 0.60 {
		t.Fatalf("ZeRO-Infinity at %.2f of Megatron, paper says <0.57", zi)
	}
	if zi >= zo {
		t.Fatalf("ZeRO-Infinity (%.2f) should trail ZeRO-Offload (%.2f)", zi, zo)
	}
}

func TestNVMeModeCollapses(t *testing.T) {
	// Fig. 1b: ZeRO-Infinity with NVMe is orders of magnitude below
	// Megatron on the 1.7B model.
	m := v100Model(modelcfg.Config1p7B())
	mega := Run(modelcfg.Megatron, m)
	nvme := Run(modelcfg.ZeROInfinityNVMe, m)
	slowdown := float64(nvme.IterTime) / float64(mega.IterTime)
	if slowdown < 20 {
		t.Fatalf("ZeRO-Infinity NVMe only %.0fx slower than Megatron; paper reports orders of magnitude", slowdown)
	}
}

func TestPressurePenaltyShape(t *testing.T) {
	if pressurePenalty(0.5) != 1 || pressurePenalty(0.85) != 1 {
		t.Fatal("no penalty below the knee")
	}
	if p := pressurePenalty(1.0); p < 2.999 || p > 3.001 {
		t.Fatalf("full occupancy penalty %v, want 3", p)
	}
	if p := pressurePenalty(1.5); p < 2.999 || p > 3.001 {
		t.Fatal("penalty must clamp above 1.0 occupancy")
	}
	mid := pressurePenalty(0.925)
	if mid <= 1 || mid >= 3 {
		t.Fatalf("mid-range penalty %v out of (1,3)", mid)
	}
}

func TestRunInvalidInputs(t *testing.T) {
	bad := modelcfg.Config1p7B()
	bad.Hidden = 0
	if r := Run(modelcfg.Megatron, v100Model(bad)); !r.OOM {
		t.Fatal("invalid config must fail")
	}
	if r := Run(modelcfg.ZeRO2, v100Model(modelcfg.Config1p7B())); !r.OOM {
		t.Fatal("distributed-only methods must be rejected here")
	}
}

func TestThroughputMonotoneInModelSize(t *testing.T) {
	// Fig. 8b's premise: iteration time grows roughly linearly with
	// model size for a fixed hidden width.
	small := Run(modelcfg.ZeROInfinity, v100Model(modelcfg.Config1p7B()))
	large := Run(modelcfg.ZeROInfinity, v100Model(modelcfg.Config4B()))
	ratio := float64(large.IterTime) / float64(small.IterTime)
	// 4B/1.7B ≈ 2.4x the layers.
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("iteration-time ratio %v for 2.4x layers", ratio)
	}
}
