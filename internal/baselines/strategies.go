package baselines

import (
	"fmt"

	"stronghold/internal/modelcfg"
	"stronghold/internal/perf"
	"stronghold/internal/plan"
	"stronghold/internal/sim"
)

// This file holds the strategy planners added with the offload-method
// registry (modelcfg.MethodInfo): ZeRO-Infinity's streamed schedule on
// CPU RAM or NVMe demand paging, and Deep Optimizer States' interleaved
// CPU/GPU optimizer placement — lowered onto the same plan IR as
// l2lPlan and zeroOffloadPlan so they produce real traces, measured
// overlap and degrade under fault plans. methodPlan is the
// registry-driven dispatch RunWith uses; the closed forms in
// baselines.go remain as cross-checks (strategies_test.go).

// methodPlan lowers a plan-driven baseline method into its iteration
// plan. The caller has already checked the footprint; pressure is the
// allocator-pressure penalty for this model on this platform.
func methodPlan(method modelcfg.Method, m perf.Model, pressure float64) (*plan.Iteration, error) {
	switch method {
	case modelcfg.L2L:
		return l2lPlan(m, pressure), nil
	case modelcfg.ZeROOffload:
		return zeroOffloadPlan(m, pressure), nil
	case modelcfg.ZeROInfinity:
		return zeroInfinityPlan(m, pressure, false), nil
	case modelcfg.ZeROInfinityNVMe:
		return zeroInfinityPlan(m, pressure, true), nil
	case modelcfg.InterleavedOpt:
		return interleavedOptPlan(m, pressure), nil
	}
	return nil, fmt.Errorf("baselines: no planner for method %s", method)
}

// PlanFor builds the validated iteration plan a plan-driven baseline
// method would execute for this model — what the trace and figure
// commands render. It fails for methods the baseline engine does not
// plan (closed-form Megatron, the core-engine and cluster methods).
func PlanFor(method modelcfg.Method, m perf.Model) (*plan.Iteration, error) {
	info := modelcfg.Lookup(method)
	if info == nil || info.Engine != modelcfg.EngineBaseline || !info.PlanDriven {
		return nil, fmt.Errorf("baselines: method %s is not a plan-driven baseline", method)
	}
	fp := modelcfg.Footprint(method, m.Cfg, 0, 1)
	pressure := pressurePenalty(float64(fp.GPU) / float64(m.Plat.GPU.MemBytes))
	it, err := methodPlan(method, m, pressure)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(it); err != nil {
		return nil, err
	}
	return it, nil
}

// zeroInfinityPlan is ZeRO-Infinity's schedule as a plan: every layer's
// partitioned states stream host→device before each visit in both
// passes (at twice STRONGHOLD's weight-only volume — parameters plus
// partition metadata and gradient buffers), each visit pays the
// per-layer runtime refactoring copy on the host loop (§VI-A), and the
// fused CPU optimizer runs over all parameters at the end, its
// half-overlap with the backward tail priced into the explicit
// duration exactly as in the closed form. The device side is a
// two-slot streamed window like L2L's (one resident block, one in
// flight). In NVMe mode the states live on secondary storage and are
// demand-paged per visit: the page-in is issued only when the layer is
// needed — behind the previous kernel, nothing reads ahead — and every
// page-in recycles the two-slot host staging ring from the page-out
// two epochs earlier, which serializes the small-block I/O with
// compute; that synchronous paging is the collapse the paper measures
// (Fig. 1b).
func zeroInfinityPlan(m perf.Model, pressure float64, nvme bool) *plan.Iteration {
	lt := m.Layer()
	n := m.Cfg.Layers
	volBytes := int64(float64(m.Cfg.LayerWeightBytes()) * zeroInfinityVolumeFactor)
	c2g := sim.Time(float64(lt.C2G) * zeroInfinityVolumeFactor)
	g2c := sim.Time(float64(lt.G2C) * zeroInfinityVolumeFactor)
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	optDur := sim.Time(float64(params*28) / zeroOffloadCPUAdamBW * 1e9 / 2 * pressure)
	embed := m.EmbeddingTime()

	var ioBytes int64
	var readDur, writeDur sim.Time
	if nvme {
		bytes := float64(params*zeroInfinityNVMeBytesPerParam) / float64(n)
		ioBytes = int64(bytes)
		readDur = sim.Time(bytes / (m.Plat.NVMe.ReadBW * zeroInfinityNVMeRandomFactor) * 1e9)
		writeDur = sim.Time(bytes / (m.Plat.NVMe.WriteBW * zeroInfinityNVMeRandomFactor) * 1e9)
	}

	it := &plan.Iteration{Layers: n, Window: 1, Queues: 2, BudgetSlots: 2}
	if nvme {
		it.NVMe = true
		it.RingSlots = 2
	}
	add := func(op plan.Op) plan.ID {
		op.ID = plan.ID(len(it.Ops))
		it.Ops = append(it.Ops, op)
		return op.ID
	}

	// spills is the global page-out order; page-in k recycles the ring
	// slot of page-out k-2 (the two-slot staging ring), which is also
	// the explicit edge the validator's funding argument needs.
	var spills []plan.ID
	stage := func(name string, layer int, write bool, deps []plan.ID) plan.ID {
		dur := readDur
		if write {
			dur = writeDur
		}
		id := add(plan.Op{Kind: plan.NVMeStage, Name: name, Layer: layer,
			Queue: -1, Bytes: ioBytes, DurNS: dur, Write: write, Deps: deps})
		if write {
			spills = append(spills, id)
		}
		return id
	}
	pageIn := func(name string, layer int, prev plan.ID) plan.ID {
		deps := []plan.ID{prev}
		if len(spills) >= 2 {
			deps = append(deps, spills[len(spills)-2])
		}
		return stage(name, layer, false, deps)
	}

	embedFP := add(plan.Op{Kind: plan.ComputeFP, Name: "fp embed",
		Layer: -1, Queue: 0, DurNS: embed})

	fpRelease := make([]plan.ID, n)
	prev := embedFP
	for i := 0; i < n; i++ {
		var acqDeps []plan.ID
		if i >= 2 {
			acqDeps = []plan.ID{fpRelease[i-2]}
		}
		acq := add(plan.Op{Kind: plan.BufAcquire, Name: fmt.Sprintf("acquire L%d", i),
			Layer: i, Queue: -1, Bytes: volBytes, Deps: acqDeps})
		fetchDeps := []plan.ID{acq}
		if nvme {
			fetchDeps = append(fetchDeps, pageIn(fmt.Sprintf("page-in L%d", i), i, prev))
		}
		up := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("fetch L%d", i),
			Layer: i, Queue: -1, Bytes: volBytes, DurNS: c2g, Deps: fetchDeps})
		// The refactoring copy is synchronous in ZeRO's engine: it gates
		// the kernel and waits for the previous one, so it lands on the
		// critical path of every visit (perFP in the closed form).
		ref := add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("refactor L%d", i),
			Layer: i, Queue: 1, DurNS: zeroInfinityRefactorNS, Deps: []plan.ID{up, prev}})
		k := add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("fp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.FP, Deps: []plan.ID{ref}})
		relDeps := []plan.ID{k}
		if nvme {
			relDeps = []plan.ID{stage(fmt.Sprintf("page-out L%d", i), i, true, []plan.ID{k})}
		}
		fpRelease[i] = add(plan.Op{Kind: plan.BufRelease, Name: fmt.Sprintf("release L%d", i),
			Layer: i, Queue: -1, Deps: relDeps})
		prev = k
	}

	head := add(plan.Op{Kind: plan.ComputeFP, Name: "fp head+loss",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})

	bpRelease := make([]plan.ID, n)
	grads := make([]plan.ID, 0, n)
	prev = head
	for i := n - 1; i >= 0; i-- {
		// The first two backward acquires recycle the last two forward
		// slots; the explicit edges make the budget funding provable even
		// when those releases wait on NVMe page-outs. Later acquires
		// recycle the backward slot released two visits earlier.
		acqDeps := []plan.ID{fpRelease[i], prev}
		if i+2 <= n-1 {
			acqDeps = append(acqDeps, bpRelease[i+2])
		} else if i != n-2 && n >= 2 {
			acqDeps = append(acqDeps, fpRelease[n-2])
		}
		acq := add(plan.Op{Kind: plan.BufAcquire, Name: fmt.Sprintf("bp acquire L%d", i),
			Layer: i, Queue: -1, Bytes: volBytes, Deps: acqDeps})
		fetchDeps := []plan.ID{acq}
		if nvme {
			fetchDeps = append(fetchDeps, pageIn(fmt.Sprintf("bp page-in L%d", i), i, prev))
		}
		up := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("bp fetch L%d", i),
			Layer: i, Queue: -1, Bytes: volBytes, DurNS: c2g, Deps: fetchDeps})
		ref := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp refactor L%d", i),
			Layer: i, Queue: 1, DurNS: zeroInfinityRefactorNS, Deps: []plan.ID{up, prev}})
		k := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.BP, Deps: []plan.ID{ref}})
		grad := add(plan.Op{Kind: plan.Offload, Name: fmt.Sprintf("grad offload L%d", i),
			Layer: i, Queue: -1, Bytes: volBytes, DurNS: g2c, Deps: []plan.ID{k}})
		grads = append(grads, grad)
		relDeps := []plan.ID{grad}
		if nvme {
			relDeps = []plan.ID{stage(fmt.Sprintf("bp page-out L%d", i), i, true, []plan.ID{grad})}
		}
		bpRelease[i] = add(plan.Op{Kind: plan.BufRelease, Name: fmt.Sprintf("bp release L%d", i),
			Layer: i, Queue: -1, Deps: relDeps})
		prev = k
	}

	bpEmbed := add(plan.Op{Kind: plan.ComputeBP, Name: "bp embed",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})
	add(plan.Op{Kind: plan.OptStep, Name: "cpu adam fused",
		Layer: -1, Queue: -1, DurNS: optDur,
		Deps: append(append([]plan.ID(nil), grads...), bpEmbed)})
	return it
}

// interleavedOptPlan is Deep Optimizer States' schedule as a plan:
// parameters and gradients stay device-resident like ZeRO-Offload, but
// instead of one fused CPU Adam after the backward pass, each layer's
// update is split into an interleaved subgroup pair as soon as its
// gradients land on the host — a CPU share updating in place, and a
// GPU share whose moment chunk streams up, updates on a dedicated
// device stream (queue 1, off the backward kernels' queue) and streams
// back through a two-slot staging budget (OptSlots). The CPU-updated
// parameter share uploads behind its subgroup. Everything overlaps the
// remaining backward compute, so the exposed cost is one subgroup
// drain instead of ZeRO-Offload's serial optimizer phase — the
// method's entire advantage; kernels and transfer rates are identical.
func interleavedOptPlan(m perf.Model, pressure float64) *plan.Iteration {
	lt := m.Layer()
	n := m.Cfg.Layers
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	perLayer := params / int64(n)
	share := interleavedGPUShare
	xfer := func(bytes int64) sim.Time {
		return sim.Time(float64(bytes) / m.Plat.PCIe.BandwidthPerDir * 1e9 * pressure)
	}
	gradBytes := perLayer * modelcfg.BytesGrad
	momBytes := int64(share * float64(perLayer*modelcfg.BytesOptState))
	upBytes := int64((1 - share) * float64(perLayer*modelcfg.BytesParam))
	cpuDur := sim.Time((1 - share) * float64(perLayer*28) / interleavedCPUAdamBW * 1e9 * pressure)
	gpuDur := sim.Time(share * float64(perLayer*28) / m.Plat.GPU.MemBandwidth * 1e9)
	gpuEmbedOpt := sim.Time(float64(m.Cfg.EmbeddingParams()*28) / m.Plat.GPU.MemBandwidth * 1e9)
	embed := m.EmbeddingTime()

	resident := make([]int, n)
	for i := range resident {
		resident[i] = i
	}
	it := &plan.Iteration{
		Layers: n, Window: n, Queues: 2, OptSlots: 2,
		EntryResident: resident, ExitResident: resident,
	}
	add := func(op plan.Op) plan.ID {
		op.ID = plan.ID(len(it.Ops))
		it.Ops = append(it.Ops, op)
		return op.ID
	}

	prev := add(plan.Op{Kind: plan.ComputeFP, Name: "fp embed",
		Layer: -1, Queue: 0, DurNS: embed})
	for i := 0; i < n; i++ {
		prev = add(plan.Op{Kind: plan.ComputeFP, Name: fmt.Sprintf("fp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.FP, Deps: []plan.ID{prev}})
	}
	prev = add(plan.Op{Kind: plan.ComputeFP, Name: "fp head+loss",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})

	momWB := make([]plan.ID, n)
	for i := range momWB {
		momWB[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		k := add(plan.Op{Kind: plan.ComputeBP, Name: fmt.Sprintf("bp L%d", i),
			Layer: i, Queue: 0, DurNS: lt.BP, Deps: []plan.ID{prev}})
		grad := add(plan.Op{Kind: plan.Offload, Name: fmt.Sprintf("grad offload L%d", i),
			Layer: i, Queue: -1, Bytes: gradBytes, DurNS: xfer(gradBytes), Deps: []plan.ID{k}})
		cpuOp := add(plan.Op{Kind: plan.OptStep, Name: fmt.Sprintf("adam L%d cpu", i),
			Layer: i, Queue: -1, Frac: 1 - share, DurNS: cpuDur, Deps: []plan.ID{grad}})
		// The moment fetch recycles the staging slot written back two
		// subgroups earlier (the validator's funding edge).
		fetchDeps := []plan.ID{grad}
		if i+2 < n && momWB[i+2] >= 0 {
			fetchDeps = append(fetchDeps, momWB[i+2])
		}
		fetch := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("mom fetch L%d", i),
			Layer: i, Queue: -1, Frac: share, Bytes: momBytes, DurNS: xfer(momBytes), Deps: fetchDeps})
		gpuOp := add(plan.Op{Kind: plan.OptStep, Name: fmt.Sprintf("adam L%d gpu", i),
			Layer: i, Queue: 1, GPU: true, Frac: share, DurNS: gpuDur, Deps: []plan.ID{fetch}})
		momWB[i] = add(plan.Op{Kind: plan.Offload, Name: fmt.Sprintf("mom writeback L%d", i),
			Layer: i, Queue: -1, Frac: share, Bytes: momBytes, DurNS: xfer(momBytes), Deps: []plan.ID{gpuOp}})
		paramUp := add(plan.Op{Kind: plan.Prefetch, Name: fmt.Sprintf("param upload L%d", i),
			Layer: i, Queue: -1, Bytes: upBytes, DurNS: xfer(upBytes), Deps: []plan.ID{cpuOp}})
		add(plan.Op{Kind: plan.Join, Name: fmt.Sprintf("opt join L%d", i),
			Layer: i, Queue: -1, Deps: []plan.ID{cpuOp, momWB[i], paramUp}})
		prev = k
	}

	bpEmbed := add(plan.Op{Kind: plan.ComputeBP, Name: "bp embed",
		Layer: -1, Queue: 0, DurNS: embed, Deps: []plan.ID{prev}})
	add(plan.Op{Kind: plan.OptStep, Name: "gpu adam embed", GPU: true,
		Layer: -1, Queue: 0, DurNS: gpuEmbedOpt, Deps: []plan.ID{bpEmbed}})
	return it
}

// interleavedOptIter is the closed-form cross-check for
// interleavedOptPlan: every subgroup update overlaps the remaining
// backward compute, so the iteration is pure compute plus the longer
// of the embedding's device-side update and the final subgroup's
// drain (gradient offload, CPU share, parameter upload) after the
// last backward kernel.
func interleavedOptIter(m perf.Model, pressure float64) sim.Time {
	params := m.Cfg.TotalParams() / int64(m.Cfg.ModelParallel)
	perLayer := params / int64(m.Cfg.Layers)
	share := interleavedGPUShare
	xfer := func(bytes int64) sim.Time {
		return sim.Time(float64(bytes) / m.Plat.PCIe.BandwidthPerDir * 1e9 * pressure)
	}
	gradBytes := perLayer * modelcfg.BytesGrad
	upBytes := int64((1 - share) * float64(perLayer*modelcfg.BytesParam))
	cpuDur := sim.Time((1 - share) * float64(perLayer*28) / interleavedCPUAdamBW * 1e9 * pressure)
	gpuEmbedOpt := sim.Time(float64(m.Cfg.EmbeddingParams()*28) / m.Plat.GPU.MemBandwidth * 1e9)
	compute := computeTotal(m)
	drain := xfer(gradBytes) + cpuDur + xfer(upBytes)
	return compute + max(gpuEmbedOpt, drain-m.EmbeddingTime())
}
