package comm

import "stronghold/internal/sim"

// Additional collective algorithms beyond the ring family: recursive
// halving/doubling (latency-optimal for small payloads) and a two-level
// hierarchical all-reduce (intra-node then inter-node), the shapes NCCL
// switches between. The simulated runtimes use these to pick the right
// algorithm per payload, as a production communication library would.

// hdBandwidthEfficiency is the fraction of link bandwidth
// halving-doubling sustains: its long-distance pairings cross switch
// tiers and cannot use the contention-free nearest-neighbor paths a
// ring enjoys, which is why bandwidth-bound payloads prefer rings.
const hdBandwidthEfficiency = 0.7

// HalvingDoublingAllReduce returns the time of a recursive
// halving-doubling all-reduce: 2·log2(w) steps; the i-th
// reduce-scatter step moves bytes/2^(i+1).
func HalvingDoublingAllReduce(bytes int64, w int, link LinkSpec) sim.Time {
	if w <= 1 {
		return 0
	}
	derated := link
	derated.BandwidthBytesPerSec *= hdBandwidthEfficiency
	var total sim.Time
	// Reduce-scatter phase: bytes/2, bytes/4, …
	chunk := float64(bytes)
	steps := 0
	for n := 1; n < w; n *= 2 {
		steps++
	}
	for s := 0; s < steps; s++ {
		chunk /= 2
		total += derated.transfer(chunk)
	}
	// All-gather phase mirrors it.
	return 2 * total
}

// BestAllReduce returns the faster of ring and halving-doubling for the
// payload — rings win on bandwidth for large payloads, trees on latency
// for small ones.
func BestAllReduce(bytes int64, w int, link LinkSpec) sim.Time {
	ring := RingAllReduce(bytes, w, link)
	hd := HalvingDoublingAllReduce(bytes, w, link)
	return min(ring, hd)
}

// HierarchicalAllReduce models a two-level all-reduce across `nodes`
// machines with `perNode` ranks each: intra-node reduce over the fast
// local link, inter-node ring over the fabric, then intra-node
// broadcast. This is the topology-aware shape used on multi-GPU nodes.
func HierarchicalAllReduce(bytes int64, nodes, perNode int, local, fabric LinkSpec) sim.Time {
	if nodes*perNode <= 1 {
		return 0
	}
	var t sim.Time
	if perNode > 1 {
		t += RingReduceScatter(bytes, perNode, local)
	}
	if nodes > 1 {
		// Each node's representative all-reduces the node-local shard.
		shard := bytes
		if perNode > 1 {
			shard = bytes / int64(perNode)
		}
		t += RingAllReduce(shard, nodes, fabric)
	}
	if perNode > 1 {
		t += RingAllGather(bytes, perNode, local)
	}
	return t
}
