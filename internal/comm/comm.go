// Package comm models collective communication — NCCL-style ring
// collectives for GPUs and Gloo-style CPU collectives — with α–β cost
// models, plus STRONGHOLD's heterogeneous concurrent collectives
// (§III-E2) that let CPU and GPU tensors participate at the same time.
// It also provides functional (real-tensor) all-reduce used by the
// multi-stream executor's gradient synchronization.
package comm

import (
	"fmt"

	"stronghold/internal/sim"
	"stronghold/internal/tensor"
)

// LinkSpec is an α–β link model: fixed per-message latency plus a
// bandwidth term.
type LinkSpec struct {
	BandwidthBytesPerSec float64
	LatencyNS            int64
}

// Validate reports spec errors.
func (l LinkSpec) Validate() error {
	if l.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("comm: non-positive bandwidth %v", l.BandwidthBytesPerSec)
	}
	if l.LatencyNS < 0 {
		return fmt.Errorf("comm: negative latency %d", l.LatencyNS)
	}
	return nil
}

func (l LinkSpec) transfer(bytes float64) sim.Time {
	return l.LatencyNS + sim.Time(bytes/l.BandwidthBytesPerSec*1e9)
}

// RingAllReduce returns the time for a ring all-reduce of the given
// payload across w ranks: 2·(w−1) steps each moving bytes/w.
func RingAllReduce(bytes int64, w int, link LinkSpec) sim.Time {
	if w <= 1 {
		return 0
	}
	steps := 2 * (w - 1)
	per := float64(bytes) / float64(w)
	return sim.Time(steps) * link.transfer(per)
}

// RingAllGather returns the time for a ring all-gather: (w−1) steps of
// bytes/w.
func RingAllGather(bytes int64, w int, link LinkSpec) sim.Time {
	if w <= 1 {
		return 0
	}
	return sim.Time(w-1) * link.transfer(float64(bytes)/float64(w))
}

// RingReduceScatter returns the time for a reduce-scatter: (w−1) steps
// of bytes/w.
func RingReduceScatter(bytes int64, w int, link LinkSpec) sim.Time {
	return RingAllGather(bytes, w, link)
}

// Broadcast returns the time for a binomial-tree broadcast of the full
// payload: ceil(log2 w) full-size hops.
func Broadcast(bytes int64, w int, link LinkSpec) sim.Time {
	if w <= 1 {
		return 0
	}
	hops := 0
	for n := 1; n < w; n *= 2 {
		hops++
	}
	return sim.Time(hops) * link.transfer(float64(bytes))
}

// HeterogeneousAllReduce models STRONGHOLD's concurrent CPU+GPU
// collectives: a GPU-tensor all-reduce (NCCL) and a CPU-tensor
// all-reduce (Gloo) issued together. Native frameworks serialize the
// two ("only one type of tensors can participate at a time"); the
// heterogeneous extension overlaps them. It returns both durations so
// experiments can report the §III-E2 gain.
func HeterogeneousAllReduce(gpuBytes, cpuBytes int64, w int, gpuLink, cpuLink LinkSpec) (serialized, concurrent sim.Time) {
	g := RingAllReduce(gpuBytes, w, gpuLink)
	c := RingAllReduce(cpuBytes, w, cpuLink)
	return g + c, max(g, c)
}

// AllReduceTensors performs a functional in-place all-reduce (sum) over
// per-worker tensor lists: after the call every worker's i-th tensor
// holds the elementwise sum across workers. This is the gradient
// synchronization of the multi-stream executor (§IV-A) — data-parallel
// training inside one GPU.
func AllReduceTensors(workers [][]*tensor.Tensor) error {
	if len(workers) == 0 {
		return fmt.Errorf("comm: no workers")
	}
	n := len(workers[0])
	for w, ts := range workers {
		if len(ts) != n {
			return fmt.Errorf("comm: worker %d has %d tensors, want %d", w, len(ts), n)
		}
	}
	for i := 0; i < n; i++ {
		ref := workers[0][i]
		for w := 1; w < len(workers); w++ {
			if workers[w][i].Size() != ref.Size() {
				return fmt.Errorf("comm: tensor %d size mismatch on worker %d", i, w)
			}
			ref.AddScaled(1, workers[w][i])
		}
		for w := 1; w < len(workers); w++ {
			workers[w][i].CopyFrom(ref)
		}
	}
	return nil
}
