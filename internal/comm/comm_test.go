package comm

import (
	"testing"
	"testing/quick"

	"stronghold/internal/tensor"
)

var link = LinkSpec{BandwidthBytesPerSec: 10e9, LatencyNS: 1000}

func TestLinkValidate(t *testing.T) {
	if err := link.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (LinkSpec{BandwidthBytesPerSec: 0}).Validate(); err == nil {
		t.Fatal("zero bandwidth must be rejected")
	}
	if err := (LinkSpec{BandwidthBytesPerSec: 1, LatencyNS: -1}).Validate(); err == nil {
		t.Fatal("negative latency must be rejected")
	}
}

func TestRingAllReduceFormula(t *testing.T) {
	// 8 ranks, 8 GB total: 14 steps of 1 GB at 10 GB/s = 1.4 s + 14 µs.
	got := RingAllReduce(8<<30, 8, link)
	chunk := float64(int64(1) << 30)
	perStep := 1000 + int64(chunk/10e9*1e9)
	want := 14 * perStep
	if got != want {
		t.Fatalf("allreduce = %d, want %d", got, want)
	}
}

func TestCollectivesSingleRankFree(t *testing.T) {
	if RingAllReduce(1<<30, 1, link) != 0 ||
		RingAllGather(1<<30, 1, link) != 0 ||
		Broadcast(1<<30, 1, link) != 0 {
		t.Fatal("single-rank collectives must be free")
	}
}

func TestAllGatherHalfOfAllReduce(t *testing.T) {
	// Ignoring latency, all-gather moves half of all-reduce's volume.
	big := LinkSpec{BandwidthBytesPerSec: 10e9, LatencyNS: 0}
	ar := RingAllReduce(1<<30, 8, big)
	ag := RingAllGather(1<<30, 8, big)
	if ar != 2*ag {
		t.Fatalf("allreduce %d vs allgather %d", ar, ag)
	}
	if RingReduceScatter(1<<30, 8, big) != ag {
		t.Fatal("reduce-scatter must equal all-gather cost")
	}
}

func TestBroadcastLogSteps(t *testing.T) {
	noLat := LinkSpec{BandwidthBytesPerSec: 1e9, LatencyNS: 0}
	one := Broadcast(1e9, 2, noLat)
	if one != 1e9 {
		t.Fatalf("2-rank broadcast = %d, want 1s", one)
	}
	if got := Broadcast(1e9, 8, noLat); got != 3e9 {
		t.Fatalf("8-rank broadcast = %d, want 3 hops", got)
	}
	if got := Broadcast(1e9, 5, noLat); got != 3e9 {
		t.Fatalf("5-rank broadcast = %d, want ceil(log2 5)=3 hops", got)
	}
}

func TestHeterogeneousOverlap(t *testing.T) {
	gpuLink := LinkSpec{BandwidthBytesPerSec: 100e9, LatencyNS: 0}
	cpuLink := LinkSpec{BandwidthBytesPerSec: 10e9, LatencyNS: 0}
	ser, con := HeterogeneousAllReduce(8<<30, 4<<30, 8, gpuLink, cpuLink)
	if con >= ser {
		t.Fatal("concurrent heterogeneous collectives must beat serialized")
	}
	g := RingAllReduce(8<<30, 8, gpuLink)
	c := RingAllReduce(4<<30, 8, cpuLink)
	if ser != g+c || con != max(g, c) {
		t.Fatal("heterogeneous time decomposition wrong")
	}
}

func TestAllReduceTensorsSums(t *testing.T) {
	w0 := []*tensor.Tensor{tensor.FromSlice([]float32{1, 2}, 2)}
	w1 := []*tensor.Tensor{tensor.FromSlice([]float32{10, 20}, 2)}
	w2 := []*tensor.Tensor{tensor.FromSlice([]float32{100, 200}, 2)}
	if err := AllReduceTensors([][]*tensor.Tensor{w0, w1, w2}); err != nil {
		t.Fatal(err)
	}
	want := []float32{111, 222}
	for _, w := range [][]*tensor.Tensor{w0, w1, w2} {
		for i, v := range want {
			if w[0].Data()[i] != v {
				t.Fatalf("worker holds %v, want %v", w[0].Data(), want)
			}
		}
	}
}

func TestAllReduceTensorsErrors(t *testing.T) {
	if err := AllReduceTensors(nil); err == nil {
		t.Fatal("empty worker set must error")
	}
	w0 := []*tensor.Tensor{tensor.New(2), tensor.New(2)}
	w1 := []*tensor.Tensor{tensor.New(2)}
	if err := AllReduceTensors([][]*tensor.Tensor{w0, w1}); err == nil {
		t.Fatal("ragged worker lists must error")
	}
	w2 := []*tensor.Tensor{tensor.New(3), tensor.New(2)}
	if err := AllReduceTensors([][]*tensor.Tensor{w0, w2}); err == nil {
		t.Fatal("size mismatch must error")
	}
}

// Property: all-reduce of w identical tensors multiplies by w.
func TestPropertyAllReduceScaling(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		w := int(wRaw%5) + 2
		rng := tensor.NewRNG(seed)
		base := tensor.Randn(rng, 1, 6)
		var workers [][]*tensor.Tensor
		for i := 0; i < w; i++ {
			workers = append(workers, []*tensor.Tensor{base.Clone()})
		}
		if err := AllReduceTensors(workers); err != nil {
			return false
		}
		want := tensor.Scale(float32(w), base)
		return workers[w-1][0].AllClose(want, 1e-5, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: collective times are monotone in payload and rank count.
func TestPropertyCollectiveMonotone(t *testing.T) {
	f := func(kb uint16, wRaw uint8) bool {
		bytes := int64(kb)*1024 + 1024
		w := int(wRaw%14) + 2
		if RingAllReduce(2*bytes, w, link) < RingAllReduce(bytes, w, link) {
			return false
		}
		return RingAllReduce(bytes, w+1, link) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHalvingDoublingSteps(t *testing.T) {
	noLat := LinkSpec{BandwidthBytesPerSec: 1e9, LatencyNS: 0}
	// 8 ranks, 1 GB: RS moves 0.5+0.25+0.125 GB; doubled for AG = 1.75 GB
	// total at 0.7x link efficiency -> 2.5 s at 1 GB/s.
	got := HalvingDoublingAllReduce(1e9, 8, noLat)
	if got < 2.49e9 || got > 2.51e9 {
		t.Fatalf("halving-doubling = %d, want ~2.5s", got)
	}
	if HalvingDoublingAllReduce(1e9, 1, noLat) != 0 {
		t.Fatal("single rank is free")
	}
}

func TestBestAllReduceCrossover(t *testing.T) {
	// High-latency link: trees win on small payloads, rings on large.
	lat := LinkSpec{BandwidthBytesPerSec: 10e9, LatencyNS: 100_000}
	small := int64(64 << 10)
	large := int64(1 << 30)
	if BestAllReduce(small, 16, lat) != HalvingDoublingAllReduce(small, 16, lat) {
		t.Fatal("small payloads should pick halving-doubling")
	}
	if BestAllReduce(large, 16, lat) != RingAllReduce(large, 16, lat) {
		t.Fatal("large payloads should pick the ring")
	}
}

func TestHierarchicalAllReduce(t *testing.T) {
	local := LinkSpec{BandwidthBytesPerSec: 100e9, LatencyNS: 1000}
	fabric := LinkSpec{BandwidthBytesPerSec: 10e9, LatencyNS: 10_000}
	flat := RingAllReduce(1<<30, 32, fabric)
	hier := HierarchicalAllReduce(1<<30, 8, 4, local, fabric)
	if hier >= flat {
		t.Fatalf("hierarchical (%d) should beat a flat 32-rank fabric ring (%d)", hier, flat)
	}
	if HierarchicalAllReduce(1<<30, 1, 1, local, fabric) != 0 {
		t.Fatal("single rank is free")
	}
	// Degenerate single-GPU nodes reduce to the fabric ring.
	if HierarchicalAllReduce(1<<30, 8, 1, local, fabric) != RingAllReduce(1<<30, 8, fabric) {
		t.Fatal("perNode=1 must equal the flat inter-node ring")
	}
}

// Property: BestAllReduce never exceeds either algorithm.
func TestPropertyBestAllReduce(t *testing.T) {
	f := func(kb uint16, wRaw uint8) bool {
		bytes := int64(kb)*512 + 256
		w := int(wRaw%15) + 2
		best := BestAllReduce(bytes, w, link)
		return best <= RingAllReduce(bytes, w, link) &&
			best <= HalvingDoublingAllReduce(bytes, w, link)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
